// First-order optimizers over NamedParam lists: SGD(momentum) and Adam.
//
// The paper trains ResNet-20 with Adam and fine-tunes ResNet-18 with SGD;
// both are provided. Weight decay is decoupled from batch-norm parameters
// (standard practice: decay applies only to conv/linear weights).
#pragma once

#include <vector>

#include "nn/layer.h"

namespace radar::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<NamedParam> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  void zero_grad() {
    for (auto& np : params_) np.param->zero_grad();
  }
  virtual void step() = 0;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 protected:
  static bool decayable(const Param& p) {
    return p.kind == ParamKind::kConvWeight ||
           p.kind == ParamKind::kLinearWeight;
  }

  std::vector<NamedParam> params_;
  float lr_ = 0.01f;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<NamedParam> params, float lr, float momentum = 0.9f,
      float weight_decay = 0.0f);
  void step() override;

 private:
  float momentum_, weight_decay_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<NamedParam> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void step() override;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  std::vector<Tensor> m_, v_;
  std::int64_t t_ = 0;
};

}  // namespace radar::nn
