#include "data/synthetic.h"

#include <array>
#include <cmath>

#include "common/error.h"

namespace radar::data {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

SyntheticSpec synthetic_cifar_spec() {
  SyntheticSpec s;
  s.num_classes = 10;
  s.image_size = 32;
  s.noise = 0.30;
  s.jitter = 0.15;
  s.seed = 0xC1FA;
  s.name = "synthetic-cifar10";
  return s;
}

SyntheticSpec synthetic_imagenet_spec() {
  SyntheticSpec s;
  s.num_classes = 20;
  s.image_size = 32;
  s.noise = 0.45;
  s.jitter = 0.25;
  s.seed = 0x1A6E;
  s.name = "synthetic-imagenet";
  return s;
}

SyntheticDataset::SyntheticDataset(const SyntheticSpec& spec,
                                   std::int64_t n_train, std::int64_t n_test)
    : spec_(spec) {
  RADAR_REQUIRE(spec.num_classes >= 2, "need at least two classes");
  RADAR_REQUIRE(spec.channels == 3, "generator renders RGB images");
  Rng rng(spec.seed);
  // Class signatures: spread orientations/frequencies so classes are
  // separable but overlapping in color space.
  for (std::int64_t c = 0; c < spec.num_classes; ++c) {
    theta_.push_back(kPi * static_cast<double>(c) /
                         static_cast<double>(spec.num_classes) +
                     rng.uniform(-0.05, 0.05));
    freq_.push_back(2.0 + 6.0 * rng.uniform() );
    phase0_.push_back(rng.uniform(0.0, 2.0 * kPi));
    color_.push_back({rng.uniform(0.3, 1.0), rng.uniform(0.3, 1.0),
                      rng.uniform(0.3, 1.0)});
    blob_.push_back({rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8)});
  }
  Rng train_rng = rng.fork();
  Rng test_rng = rng.fork();
  generate_split(n_train, train_rng, train_images_, train_labels_);
  generate_split(n_test, test_rng, test_images_, test_labels_);
}

void SyntheticDataset::generate_split(std::int64_t count, Rng& rng,
                                      nn::Tensor& images,
                                      std::vector<int>& labels) const {
  const std::int64_t s = spec_.image_size;
  images = nn::Tensor({count, spec_.channels, s, s});
  labels.resize(static_cast<std::size_t>(count));
  const std::int64_t stride = spec_.channels * s * s;
  for (std::int64_t i = 0; i < count; ++i) {
    const int label = static_cast<int>(i % spec_.num_classes);
    labels[static_cast<std::size_t>(i)] = label;
    render_sample(label, rng, images.data() + i * stride);
  }
}

void SyntheticDataset::render_sample(int label, Rng& rng, float* out) const {
  const std::int64_t s = spec_.image_size;
  const auto c = static_cast<std::size_t>(label);
  // Per-sample perturbations of the class signature.
  const double theta = theta_[c] + spec_.jitter * rng.normal();
  const double freq = freq_[c] * (1.0 + 0.3 * spec_.jitter * rng.normal());
  const double phase = phase0_[c] + rng.uniform(0.0, 2.0 * kPi) * spec_.jitter;
  const double bx = blob_[c][0] + 0.1 * spec_.jitter * rng.normal();
  const double by = blob_[c][1] + 0.1 * spec_.jitter * rng.normal();
  const double ct = std::cos(theta), st = std::sin(theta);

  for (std::int64_t ch = 0; ch < spec_.channels; ++ch) {
    const double cw = color_[c][static_cast<std::size_t>(ch)];
    float* plane = out + ch * s * s;
    for (std::int64_t y = 0; y < s; ++y) {
      const double yn = static_cast<double>(y) / static_cast<double>(s);
      for (std::int64_t x = 0; x < s; ++x) {
        const double xn = static_cast<double>(x) / static_cast<double>(s);
        const double grating =
            std::sin(2.0 * kPi * freq * (xn * ct + yn * st) + phase);
        const double dx = xn - bx, dy = yn - by;
        const double blob = std::exp(-(dx * dx + dy * dy) / 0.02);
        const double v = cw * grating + 0.8 * blob +
                         spec_.noise * rng.normal();
        plane[y * s + x] = static_cast<float>(v);
      }
    }
  }
}

Batch SyntheticDataset::train_batch(std::int64_t batch_size, Rng& rng) const {
  RADAR_REQUIRE(batch_size > 0 && batch_size <= train_size(),
                "bad train batch size");
  Batch b;
  const std::int64_t s = spec_.image_size;
  const std::int64_t stride = spec_.channels * s * s;
  b.images = nn::Tensor({batch_size, spec_.channels, s, s});
  b.labels.resize(static_cast<std::size_t>(batch_size));
  for (std::int64_t i = 0; i < batch_size; ++i) {
    const auto idx =
        static_cast<std::int64_t>(rng.uniform_int(0, train_size() - 1));
    std::copy(train_images_.data() + idx * stride,
              train_images_.data() + (idx + 1) * stride,
              b.images.data() + i * stride);
    b.labels[static_cast<std::size_t>(i)] =
        train_labels_[static_cast<std::size_t>(idx)];
  }
  return b;
}

Batch SyntheticDataset::test_batch(std::int64_t start,
                                   std::int64_t count) const {
  RADAR_REQUIRE(start >= 0 && start + count <= test_size(),
                "test batch out of range");
  Batch b;
  const std::int64_t s = spec_.image_size;
  const std::int64_t stride = spec_.channels * s * s;
  b.images = nn::Tensor({count, spec_.channels, s, s});
  b.labels.assign(test_labels_.begin() + start,
                  test_labels_.begin() + start + count);
  std::copy(test_images_.data() + start * stride,
            test_images_.data() + (start + count) * stride,
            b.images.data());
  return b;
}

Batch SyntheticDataset::attack_batch(std::int64_t batch_size,
                                     std::uint64_t seed) const {
  Rng rng(seed);
  return train_batch(batch_size, rng);
}

}  // namespace radar::data
