// Training / evaluation loops tying the NN substrate to the data substrate.
//
// Keeps experiment binaries small: they describe *what* to train, the
// trainer handles batching, LR decay, logging, and evaluation.
#pragma once

#include <functional>

#include "data/synthetic.h"
#include "nn/optimizer.h"
#include "nn/resnet.h"
#include "qnn/engine.h"

namespace radar::data {

struct TrainConfig {
  std::int64_t epochs = 12;
  std::int64_t batch_size = 64;
  std::int64_t batches_per_epoch = 48;
  float lr = 0.01f;
  float weight_decay = 1e-4f;
  /// multiply lr by this factor at 50% and 75% of epochs
  float lr_decay = 0.1f;
  bool use_adam = true;  ///< paper: Adam for ResNet-20, SGD for ResNet-18
  std::uint64_t seed = 7;
  bool verbose = true;
};

struct TrainReport {
  float final_train_loss = 0.0f;
  double test_accuracy = 0.0;
  std::vector<float> epoch_losses;
};

/// Train `model` on `dataset`; returns the loss trajectory and final test
/// accuracy (computed with evaluate()).
TrainReport train(nn::ResNet& model, const SyntheticDataset& dataset,
                  const TrainConfig& cfg);

/// Top-1 accuracy over the full test split, evaluated in minibatches
/// through the supplied forward function (lets callers evaluate quantized
/// or protected models with the same loop).
double evaluate(const std::function<nn::Tensor(const nn::Tensor&)>& forward,
                const SyntheticDataset& dataset,
                std::int64_t batch_size = 256);

/// Convenience overload: evaluate a float ResNet in eval mode.
double evaluate(nn::ResNet& model, const SyntheticDataset& dataset,
                std::int64_t batch_size = 256);

/// True-batch evaluation through a calibrated int8 inference engine:
/// reuses one scratch + logits buffer across batches, so the steady-state
/// loop performs no allocations beyond the test-batch slices.
double evaluate(qnn::InferenceEngine& engine, const SyntheticDataset& dataset,
                std::int64_t batch_size = 64);

/// Correct top-1 predictions among the first `rows` rows of `logits`
/// against `labels` (first maximum wins). Engine logits buffers are
/// grow-only, so rows beyond the batch may hold stale data — always pass
/// the batch's row count, never logits.dim(0).
std::int64_t count_correct(const nn::Tensor& logits,
                           const std::vector<int>& labels,
                           std::int64_t rows);

}  // namespace radar::data
