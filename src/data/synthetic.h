// Procedurally generated image-classification datasets.
//
// Stand-ins for CIFAR-10 / ImageNet (unavailable offline — see DESIGN.md
// §4). Each class has a deterministic signature (grating orientation &
// frequency, color mix, blob position); each sample perturbs the signature
// with per-sample phase, shift and pixel noise. Difficulty is controlled
// by the noise level and class count. Everything is reproducible from the
// spec's seed.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace radar::data {

/// One minibatch: NCHW images + integer labels.
struct Batch {
  nn::Tensor images;
  std::vector<int> labels;
};

/// Generation parameters.
struct SyntheticSpec {
  std::int64_t num_classes = 10;
  std::int64_t image_size = 32;
  std::int64_t channels = 3;
  double noise = 0.3;          ///< additive pixel noise stddev
  double jitter = 0.15;        ///< per-sample signature perturbation
  std::uint64_t seed = 1234;
  std::string name = "synthetic";
};

/// In-memory dataset materialized from a SyntheticSpec.
class SyntheticDataset {
 public:
  SyntheticDataset(const SyntheticSpec& spec, std::int64_t n_train,
                   std::int64_t n_test);

  const SyntheticSpec& spec() const { return spec_; }
  std::int64_t train_size() const { return train_labels_.size(); }
  std::int64_t test_size() const { return test_labels_.size(); }

  /// Random training minibatch (sampling driven by the caller's RNG).
  Batch train_batch(std::int64_t batch_size, Rng& rng) const;

  /// Deterministic contiguous slice of the test set.
  Batch test_batch(std::int64_t start, std::int64_t count) const;

  /// A fixed "attack batch": what the PBFA adversary uses to estimate
  /// gradients (paper: small set with a distribution similar to training).
  Batch attack_batch(std::int64_t batch_size, std::uint64_t seed) const;

  const std::vector<int>& test_labels() const { return test_labels_; }

 private:
  void generate_split(std::int64_t count, Rng& rng, nn::Tensor& images,
                      std::vector<int>& labels) const;
  void render_sample(int label, Rng& rng, float* out) const;

  SyntheticSpec spec_;
  // Per-class signatures.
  std::vector<double> theta_, freq_, phase0_;
  std::vector<std::array<double, 3>> color_;
  std::vector<std::array<double, 2>> blob_;
  nn::Tensor train_images_;
  std::vector<int> train_labels_;
  nn::Tensor test_images_;
  std::vector<int> test_labels_;
};

/// CIFAR-10 stand-in: 10 classes, 32x32x3, moderate noise.
SyntheticSpec synthetic_cifar_spec();

/// ImageNet stand-in: 20 classes, 32x32x3, heavier noise and jitter.
SyntheticSpec synthetic_imagenet_spec();

}  // namespace radar::data
