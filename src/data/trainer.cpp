#include "data/trainer.h"

#include <memory>

#include "common/logging.h"
#include "nn/loss.h"

namespace radar::data {

TrainReport train(nn::ResNet& model, const SyntheticDataset& dataset,
                  const TrainConfig& cfg) {
  Rng rng(cfg.seed);
  std::unique_ptr<nn::Optimizer> opt;
  if (cfg.use_adam) {
    opt = std::make_unique<nn::Adam>(model.params(), cfg.lr, 0.9f, 0.999f,
                                     1e-8f, cfg.weight_decay);
  } else {
    opt = std::make_unique<nn::Sgd>(model.params(), cfg.lr, 0.9f,
                                    cfg.weight_decay);
  }
  nn::SoftmaxCrossEntropy loss_fn;
  TrainReport report;

  for (std::int64_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    if (epoch == cfg.epochs / 2 || epoch == (3 * cfg.epochs) / 4)
      opt->set_lr(opt->lr() * cfg.lr_decay);
    double epoch_loss = 0.0;
    for (std::int64_t it = 0; it < cfg.batches_per_epoch; ++it) {
      Batch batch = dataset.train_batch(cfg.batch_size, rng);
      opt->zero_grad();
      nn::Tensor logits = model.forward(batch.images, nn::Mode::kTrain);
      const float loss = loss_fn.forward(logits, batch.labels);
      model.backward(loss_fn.backward());
      opt->step();
      epoch_loss += loss;
    }
    const float mean_loss =
        static_cast<float>(epoch_loss / static_cast<double>(cfg.batches_per_epoch));
    report.epoch_losses.push_back(mean_loss);
    if (cfg.verbose) {
      RADAR_LOG(kInfo) << model.spec().name << " epoch " << (epoch + 1) << "/"
                       << cfg.epochs << " loss " << mean_loss;
    }
  }
  report.final_train_loss =
      report.epoch_losses.empty() ? 0.0f : report.epoch_losses.back();
  report.test_accuracy = evaluate(model, dataset);
  if (cfg.verbose) {
    RADAR_LOG(kInfo) << model.spec().name << " test accuracy "
                     << report.test_accuracy;
  }
  return report;
}

double evaluate(const std::function<nn::Tensor(const nn::Tensor&)>& forward,
                const SyntheticDataset& dataset, std::int64_t batch_size) {
  std::int64_t correct = 0;
  const std::int64_t total = dataset.test_size();
  for (std::int64_t start = 0; start < total; start += batch_size) {
    const std::int64_t count = std::min(batch_size, total - start);
    Batch b = dataset.test_batch(start, count);
    nn::Tensor logits = forward(b.images);
    const auto pred = nn::argmax_rows(logits);
    for (std::size_t i = 0; i < pred.size(); ++i)
      if (pred[i] == b.labels[i]) ++correct;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) / static_cast<double>(total);
}

double evaluate(nn::ResNet& model, const SyntheticDataset& dataset,
                std::int64_t batch_size) {
  return evaluate(
      [&model](const nn::Tensor& x) {
        return model.forward(x, nn::Mode::kEval);
      },
      dataset, batch_size);
}

double evaluate(qnn::InferenceEngine& engine, const SyntheticDataset& dataset,
                std::int64_t batch_size) {
  std::int64_t correct = 0;
  const std::int64_t total = dataset.test_size();
  qnn::QnnScratch scratch;
  nn::Tensor logits;
  for (std::int64_t start = 0; start < total; start += batch_size) {
    const std::int64_t count = std::min(batch_size, total - start);
    Batch b = dataset.test_batch(start, count);
    engine.forward_into(b.images, scratch, logits);
    correct += count_correct(logits, b.labels, count);
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) / static_cast<double>(total);
}

std::int64_t count_correct(const nn::Tensor& logits,
                           const std::vector<int>& labels,
                           std::int64_t rows) {
  const std::int64_t k = logits.dim(1);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* lr = logits.data() + i * k;
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < k; ++c)
      if (lr[c] > lr[best]) best = c;
    if (static_cast<int>(best) == labels[static_cast<std::size_t>(i)])
      ++correct;
  }
  return correct;
}

}  // namespace radar::data
