// Shared experiment workspace: trained-model and attack-profile caches.
//
// Every bench binary reproduces one table/figure; they all need the same
// two trained quantized models and the same PBFA profiles. The first
// binary to run trains/attacks and writes the cache (under RADAR_CACHE_DIR,
// default ./.model_cache); the rest load it. All artifacts are
// deterministic in the seeds, so the cache is stable across runs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "attack/attack_types.h"
#include "attack/pbfa.h"
#include "core/scheme.h"
#include "data/synthetic.h"
#include "data/trainer.h"
#include "qnn/engine.h"
#include "quant/qmodel.h"

namespace radar::exp {

/// A trained, quantized model with its dataset.
struct ModelBundle {
  std::string id;  ///< "resnet20" | "resnet18"
  nn::ResNetSpec spec;
  std::unique_ptr<nn::ResNet> model;
  std::unique_ptr<data::SyntheticDataset> dataset;
  std::unique_ptr<quant::QuantizedModel> qmodel;
  double clean_accuracy = 0.0;  ///< quantized model, full test split

  // ---- quantized inference engine (the eval hot path) ----
  // Accuracy evaluations run the int8 deployment artifact through
  // qnn::InferenceEngine (built and statically calibrated once on the
  // clean model by ensure_engine). Results are bit-identical across
  // engine kinds, thread counts and eval batch sizes, so the knobs below
  // never change report contents.
  std::unique_ptr<qnn::InferenceEngine> engine;
  qnn::EngineKind engine_kind = qnn::EngineKind::kBatched;
  std::int64_t eval_batch = 0;   ///< images per forward batch (<=0: auto)
  std::int64_t eval_images = 0;  ///< images actually forwarded (timing)
  qnn::QnnScratch eval_scratch;  ///< reused engine working memory
  nn::Tensor eval_logits;        ///< reused logits buffer
  /// Cached eval-subset input batches (keyed by subset / batch size).
  std::vector<data::Batch> eval_batches;
  std::int64_t cached_subset = -1, cached_batch = -1;
  /// Clean-model eval cache: accuracy on the first clean_subset test
  /// images. accuracy_on_subset reuses it whenever the dirty log proves
  /// the model is back at its clean baseline (e.g. after a full
  /// reload-clean recovery), skipping the forward passes entirely.
  std::int64_t clean_subset = -1;
  double clean_subset_acc = 0.0;
  /// Group-size scale: the paper's G values assume the full-size network;
  /// the reduced-width stand-in has ~1/group_scale of its weights, so a
  /// paper configuration "G" corresponds to G / group_scale here
  /// (preserving groups-per-layer, which is what detection/recovery
  /// granularity actually depends on). 1 for the full-size ResNet-20.
  std::int64_t group_scale = 1;

  /// Reduced-model group size equivalent to the paper's `paper_g`.
  std::int64_t scaled_group(std::int64_t paper_g) const {
    return std::max<std::int64_t>(4, paper_g / group_scale);
  }

  /// Weight counts per quantized layer (for profile statistics).
  std::vector<std::int64_t> layer_sizes() const;
};

/// Load from cache or train: "resnet20" (CIFAR-10 stand-in), "resnet18"
/// (ImageNet stand-in, reduced width — see DESIGN.md §4), or "tiny"
/// (seconds-scale bundle for tests and demos).
ModelBundle load_or_train(const std::string& id);

/// General bundle factory. `train = false` keeps the freshly initialized
/// weights and never touches the checkpoint cache, so results are
/// reproducible regardless of cache state (campaign differential / fuzz
/// tests). `eval_clean = false` skips the clean-accuracy evaluation
/// (clean_accuracy stays -1), for detection-only workloads.
ModelBundle make_bundle(const std::string& id, bool train = true,
                        bool eval_clean = true);

/// ModelBundle::group_scale for `id` without building the bundle (for
/// declaring campaign specs in paper-G terms).
std::int64_t group_scale_for(const std::string& id);

/// Reduced-model group size for the paper's `paper_g` on model `id` —
/// ModelBundle::scaled_group without building the bundle.
std::int64_t paper_group(const std::string& id, std::int64_t paper_g);

/// Load from cache or run `rounds` PBFA rounds of `n_bf` flips each.
/// Each round starts from the clean snapshot, uses a round-specific attack
/// batch, and records post-attack accuracy on a test subset.
std::vector<attack::AttackResult> load_or_run_pbfa(ModelBundle& bundle,
                                                   int n_bf, int rounds,
                                                   const std::string& tag = "",
                                                   int eval_subset = 512);

/// Like load_or_run_pbfa but for the §VIII knowledgeable attacker: each
/// round commits `n_primary` PBFA flips plus canceling decoy pairs under
/// the attacker's assumed contiguous group size.
std::vector<attack::AttackResult> load_or_run_knowledgeable(
    ModelBundle& bundle, int n_primary, int rounds,
    std::int64_t assumed_group_size, int eval_subset = 256);

/// Like load_or_run_pbfa but restricted to the given bit positions (e.g.
/// {6} for the §VIII MSB-1 attacker).
std::vector<attack::AttackResult> load_or_run_restricted_pbfa(
    ModelBundle& bundle, int n_bf, int rounds, std::vector<int> allowed_bits,
    const std::string& tag, int eval_subset = 256);

/// Build + statically calibrate the bundle's int8 inference engine if not
/// already done. Must be called while the quantized model holds its CLEAN
/// weights (activation scales are frozen from this state); every
/// accuracy-evaluating helper calls it eagerly at entry for that reason.
void ensure_engine(ModelBundle& bundle);

/// Accuracy of the int8 engine on the first `subset` test images,
/// evaluated in true batches (bundle.eval_batch images per forward) with
/// cached inputs and clean-logit reuse. Bit-identical for any engine
/// kind, thread count or batch size.
double accuracy_on_subset(ModelBundle& bundle, std::int64_t subset);

/// Result of replaying one attack round under one RADAR configuration.
struct RecoveryOutcome {
  std::int64_t flips_total = 0;
  std::int64_t flips_detected = 0;
  double accuracy_attacked = 0.0;   ///< after the attack, before recovery
  double accuracy_recovered = 0.0;  ///< after zero-out recovery
};

/// Replay `round` (optionally only its first `n_bf` flips — greedy PBFA
/// is prefix-consistent) against a fresh model protected by `cfg`;
/// measures detection and recovery. Restores the clean model afterwards.
RecoveryOutcome replay_and_recover(ModelBundle& bundle,
                                   const attack::AttackResult& round,
                                   const core::RadarConfig& cfg, int n_bf,
                                   std::int64_t eval_subset,
                                   bool measure_attacked = true);

/// Mean over rounds of replay_and_recover outcomes.
struct RecoverySummary {
  double mean_detected = 0.0;       ///< of n_bf flips
  double mean_acc_attacked = 0.0;
  double mean_acc_recovered = 0.0;
  int rounds = 0;
};

RecoverySummary summarize_recovery(ModelBundle& bundle,
                                   const std::vector<attack::AttackResult>& rounds,
                                   const core::RadarConfig& cfg, int n_bf,
                                   std::int64_t eval_subset);

}  // namespace radar::exp
