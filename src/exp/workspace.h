// Shared experiment workspace: trained-model and attack-profile caches.
//
// Every bench binary reproduces one table/figure; they all need the same
// two trained quantized models and the same PBFA profiles. The first
// binary to run trains/attacks and writes the cache (under RADAR_CACHE_DIR,
// default ./.model_cache); the rest load it. All artifacts are
// deterministic in the seeds, so the cache is stable across runs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "attack/attack_types.h"
#include "attack/pbfa.h"
#include "core/scheme.h"
#include "data/synthetic.h"
#include "data/trainer.h"
#include "quant/qmodel.h"

namespace radar::exp {

/// A trained, quantized model with its dataset.
struct ModelBundle {
  std::string id;  ///< "resnet20" | "resnet18"
  nn::ResNetSpec spec;
  std::unique_ptr<nn::ResNet> model;
  std::unique_ptr<data::SyntheticDataset> dataset;
  std::unique_ptr<quant::QuantizedModel> qmodel;
  double clean_accuracy = 0.0;  ///< quantized model, full test split
  /// Group-size scale: the paper's G values assume the full-size network;
  /// the reduced-width stand-in has ~1/group_scale of its weights, so a
  /// paper configuration "G" corresponds to G / group_scale here
  /// (preserving groups-per-layer, which is what detection/recovery
  /// granularity actually depends on). 1 for the full-size ResNet-20.
  std::int64_t group_scale = 1;

  /// Reduced-model group size equivalent to the paper's `paper_g`.
  std::int64_t scaled_group(std::int64_t paper_g) const {
    return std::max<std::int64_t>(4, paper_g / group_scale);
  }

  /// Weight counts per quantized layer (for profile statistics).
  std::vector<std::int64_t> layer_sizes() const;
};

/// Load from cache or train: "resnet20" (CIFAR-10 stand-in), "resnet18"
/// (ImageNet stand-in, reduced width — see DESIGN.md §4), or "tiny"
/// (seconds-scale bundle for tests and demos).
ModelBundle load_or_train(const std::string& id);

/// General bundle factory. `train = false` keeps the freshly initialized
/// weights and never touches the checkpoint cache, so results are
/// reproducible regardless of cache state (campaign differential / fuzz
/// tests). `eval_clean = false` skips the clean-accuracy evaluation
/// (clean_accuracy stays -1), for detection-only workloads.
ModelBundle make_bundle(const std::string& id, bool train = true,
                        bool eval_clean = true);

/// ModelBundle::group_scale for `id` without building the bundle (for
/// declaring campaign specs in paper-G terms).
std::int64_t group_scale_for(const std::string& id);

/// Reduced-model group size for the paper's `paper_g` on model `id` —
/// ModelBundle::scaled_group without building the bundle.
std::int64_t paper_group(const std::string& id, std::int64_t paper_g);

/// Load from cache or run `rounds` PBFA rounds of `n_bf` flips each.
/// Each round starts from the clean snapshot, uses a round-specific attack
/// batch, and records post-attack accuracy on a test subset.
std::vector<attack::AttackResult> load_or_run_pbfa(ModelBundle& bundle,
                                                   int n_bf, int rounds,
                                                   const std::string& tag = "",
                                                   int eval_subset = 512);

/// Like load_or_run_pbfa but for the §VIII knowledgeable attacker: each
/// round commits `n_primary` PBFA flips plus canceling decoy pairs under
/// the attacker's assumed contiguous group size.
std::vector<attack::AttackResult> load_or_run_knowledgeable(
    ModelBundle& bundle, int n_primary, int rounds,
    std::int64_t assumed_group_size, int eval_subset = 256);

/// Like load_or_run_pbfa but restricted to the given bit positions (e.g.
/// {6} for the §VIII MSB-1 attacker).
std::vector<attack::AttackResult> load_or_run_restricted_pbfa(
    ModelBundle& bundle, int n_bf, int rounds, std::vector<int> allowed_bits,
    const std::string& tag, int eval_subset = 256);

/// Accuracy on the first `subset` test images (eval mode).
double accuracy_on_subset(ModelBundle& bundle, std::int64_t subset);

/// Result of replaying one attack round under one RADAR configuration.
struct RecoveryOutcome {
  std::int64_t flips_total = 0;
  std::int64_t flips_detected = 0;
  double accuracy_attacked = 0.0;   ///< after the attack, before recovery
  double accuracy_recovered = 0.0;  ///< after zero-out recovery
};

/// Replay `round` (optionally only its first `n_bf` flips — greedy PBFA
/// is prefix-consistent) against a fresh model protected by `cfg`;
/// measures detection and recovery. Restores the clean model afterwards.
RecoveryOutcome replay_and_recover(ModelBundle& bundle,
                                   const attack::AttackResult& round,
                                   const core::RadarConfig& cfg, int n_bf,
                                   std::int64_t eval_subset,
                                   bool measure_attacked = true);

/// Mean over rounds of replay_and_recover outcomes.
struct RecoverySummary {
  double mean_detected = 0.0;       ///< of n_bf flips
  double mean_acc_attacked = 0.0;
  double mean_acc_recovered = 0.0;
  int rounds = 0;
};

RecoverySummary summarize_recovery(ModelBundle& bundle,
                                   const std::vector<attack::AttackResult>& rounds,
                                   const core::RadarConfig& cfg, int n_bf,
                                   std::int64_t eval_subset);

}  // namespace radar::exp
