#include "exp/workspace.h"

#include "attack/knowledgeable.h"

#include <algorithm>

#include "common/env.h"
#include "common/logging.h"
#include "common/serialize.h"
#include "common/thread_pool.h"
#include "nn/model_io.h"

namespace radar::exp {

namespace {

/// Default images per engine forward when the caller left eval_batch on
/// auto; purely a throughput knob (results are batch-size invariant).
constexpr std::int64_t kDefaultEvalBatch = 64;
/// Images used for the one-time static activation calibration.
constexpr std::int64_t kCalibImages = 128;

/// Experiment-scale knobs. Kept deliberately small so the whole suite runs
/// on a laptop; RADAR_FAST shrinks them further for CI smoke runs.
struct BundleRecipe {
  nn::ResNetSpec spec;
  data::SyntheticSpec data_spec;
  std::int64_t n_train, n_test;
  data::TrainConfig train;
};

BundleRecipe recipe_for(const std::string& id) {
  BundleRecipe r;
  if (id == "resnet20") {
    r.spec = nn::ResNetSpec::resnet20(10);
    r.data_spec = data::synthetic_cifar_spec();
    r.data_spec.noise = 0.55;  // keep the task non-trivial (~95% ceiling)
    r.n_train = 4096;
    r.n_test = 1024;
    r.train.epochs = fast_mode() ? 2 : 4;
    r.train.batch_size = 64;
    r.train.batches_per_epoch = 32;
    r.train.lr = 0.002f;
    r.train.use_adam = true;  // paper: ResNet-20 trained with Adam
    r.train.seed = 20;
  } else if (id == "resnet18") {
    // Paper architecture at reduced width (DESIGN.md §4).
    r.spec = nn::ResNetSpec::resnet18(20, 16);
    r.data_spec = data::synthetic_imagenet_spec();
    r.data_spec.noise = 0.6;
    r.n_train = 4096;
    r.n_test = 1024;
    r.train.epochs = fast_mode() ? 2 : 4;
    r.train.batch_size = 64;
    r.train.batches_per_epoch = 32;
    r.train.lr = 0.02f;
    r.train.use_adam = false;  // paper: ResNet-18 fine-tuned with SGD
    r.train.seed = 18;
  } else if (id == "tiny") {
    // Test/demo-scale bundle: trains in seconds.
    r.spec.num_classes = 4;
    r.spec.base_width = 8;
    r.spec.blocks_per_stage = {1, 1};
    r.spec.name = "tiny";
    r.data_spec = data::synthetic_cifar_spec();
    r.data_spec.image_size = 16;
    r.data_spec.num_classes = 4;
    r.n_train = 512;
    r.n_test = 256;
    r.train.epochs = 4;
    r.train.batch_size = 32;
    r.train.batches_per_epoch = 16;
    r.train.lr = 0.005f;
    r.train.verbose = false;
    r.train.seed = 4;
  } else {
    throw InvalidArgument("unknown model id: " + id);
  }
  return r;
}

}  // namespace

std::vector<std::int64_t> ModelBundle::layer_sizes() const {
  std::vector<std::int64_t> out;
  for (std::size_t i = 0; i < qmodel->num_layers(); ++i)
    out.push_back(qmodel->layer(i).size());
  return out;
}

ModelBundle load_or_train(const std::string& id) {
  return make_bundle(id, /*train=*/true, /*eval_clean=*/true);
}

ModelBundle make_bundle(const std::string& id, bool train, bool eval_clean) {
  const BundleRecipe recipe = recipe_for(id);
  ModelBundle b;
  b.id = id;
  b.spec = recipe.spec;
  Rng init_rng(recipe.train.seed);
  b.model = std::make_unique<nn::ResNet>(recipe.spec, init_rng);
  b.dataset = std::make_unique<data::SyntheticDataset>(
      recipe.data_spec, recipe.n_train, recipe.n_test);

  if (train) {
    const std::string ckpt = model_cache_dir() + "/" + id + ".ckpt";
    if (file_exists(ckpt)) {
      nn::load_checkpoint(ckpt, b.model->params(), b.model->buffers());
      RADAR_LOG(kInfo) << id << ": loaded cached checkpoint " << ckpt;
    } else {
      RADAR_LOG(kInfo) << id << ": training (" << b.model->num_params()
                       << " params)...";
      data::train(*b.model, *b.dataset, recipe.train);
      nn::save_checkpoint(ckpt, b.model->params(), b.model->buffers());
    }
  }

  b.qmodel = std::make_unique<quant::QuantizedModel>(*b.model);
  b.group_scale = group_scale_for(id);
  if (eval_clean) {
    // Full-test-split accuracy of the int8 deployment artifact, batched
    // through the inference engine (the same path campaign evals use).
    b.clean_accuracy = accuracy_on_subset(b, b.dataset->test_size());
    RADAR_LOG(kInfo) << id << ": quantized clean accuracy "
                     << b.clean_accuracy;
  } else {
    b.clean_accuracy = -1.0;
  }
  return b;
}

void ensure_engine(ModelBundle& b) {
  if (b.engine == nullptr) {
    b.engine = std::make_unique<qnn::InferenceEngine>(
        *b.qmodel, b.engine_kind, &ThreadPool::global());
  }
  b.engine->set_kind(b.engine_kind);
  if (!b.engine->calibrated()) {
    const std::int64_t n =
        std::min<std::int64_t>(kCalibImages, b.dataset->test_size());
    RADAR_REQUIRE(n > 0, "dataset has no test images to calibrate on");
    b.engine->calibrate(b.dataset->test_batch(0, n).images);
  }
}

std::int64_t group_scale_for(const std::string& id) {
  // Paper-G -> reduced-G translation (see ModelBundle::group_scale): the
  // ResNet-18 stand-in runs at 1/16 width ~= 1/16.6 of the paper's 11.7M
  // weights; ResNet-20 is built at full size.
  return (id == "resnet18") ? 16 : 1;
}

std::int64_t paper_group(const std::string& id, std::int64_t paper_g) {
  return std::max<std::int64_t>(4, paper_g / group_scale_for(id));
}

double accuracy_on_subset(ModelBundle& bundle, std::int64_t subset) {
  subset = std::min<std::int64_t>(subset, bundle.dataset->test_size());
  if (subset <= 0) return 0.0;
  ensure_engine(bundle);

  // Clean-baseline fast path: when dirty tracking proves the int8 state
  // is exactly the clean baseline (e.g. after a complete reload-clean
  // recovery), the cached clean accuracy is bit-identical to re-running
  // the forward passes — so skip them.
  const bool at_baseline =
      bundle.qmodel->dirty_tracking() &&
      bundle.qmodel->dirty_matches_baseline();
  if (at_baseline && bundle.clean_subset == subset)
    return bundle.clean_subset_acc;

  const std::int64_t batch =
      bundle.eval_batch > 0 ? bundle.eval_batch : kDefaultEvalBatch;
  if (bundle.cached_subset != subset || bundle.cached_batch != batch) {
    bundle.eval_batches.clear();
    for (std::int64_t start = 0; start < subset; start += batch) {
      bundle.eval_batches.push_back(
          bundle.dataset->test_batch(start, std::min(batch, subset - start)));
    }
    bundle.cached_subset = subset;
    bundle.cached_batch = batch;
  }

  std::int64_t correct = 0;
  for (const data::Batch& tb : bundle.eval_batches) {
    bundle.engine->forward_into(tb.images, bundle.eval_scratch,
                                bundle.eval_logits);
    // Logits are a grow-only buffer: the row count comes from the batch.
    correct += data::count_correct(bundle.eval_logits, tb.labels,
                                   tb.images.dim(0));
  }
  bundle.eval_images += subset;
  const double acc =
      static_cast<double>(correct) / static_cast<double>(subset);
  if (at_baseline) {
    bundle.clean_subset = subset;
    bundle.clean_subset_acc = acc;
  }
  return acc;
}

std::vector<attack::AttackResult> load_or_run_pbfa(ModelBundle& bundle,
                                                   int n_bf, int rounds,
                                                   const std::string& tag,
                                                   int eval_subset) {
  const std::string path = model_cache_dir() + "/" + bundle.id + "_pbfa" +
                           (tag.empty() ? "" : "_" + tag) + "_nbf" +
                           std::to_string(n_bf) + "_r" +
                           std::to_string(rounds) + ".bin";
  if (file_exists(path)) {
    RADAR_LOG(kInfo) << bundle.id << ": loading cached profiles " << path;
    return attack::load_profiles(path);
  }

  RADAR_LOG(kInfo) << bundle.id << ": running " << rounds
                   << " PBFA rounds of " << n_bf << " flips...";
  ensure_engine(bundle);  // calibrate on the clean weights
  const quant::ArenaSnapshot clean = bundle.qmodel->snapshot();
  std::vector<attack::AttackResult> out;
  attack::Pbfa pbfa;
  for (int r = 0; r < rounds; ++r) {
    data::Batch batch = bundle.dataset->attack_batch(
        16, 0xA77AC4ull * (static_cast<std::uint64_t>(r) + 1));
    attack::AttackResult res = pbfa.run(*bundle.qmodel, batch, n_bf);
    res.accuracy_after = accuracy_on_subset(bundle, eval_subset);
    RADAR_LOG(kInfo) << bundle.id << ": round " << (r + 1) << "/" << rounds
                     << " loss " << res.loss_before << " -> "
                     << res.loss_after << ", acc " << res.accuracy_after;
    out.push_back(std::move(res));
    bundle.qmodel->restore(clean);
  }
  attack::save_profiles(path, out);
  return out;
}

std::vector<attack::AttackResult> load_or_run_knowledgeable(
    ModelBundle& bundle, int n_primary, int rounds,
    std::int64_t assumed_group_size, int eval_subset) {
  const std::string path =
      model_cache_dir() + "/" + bundle.id + "_know_g" +
      std::to_string(assumed_group_size) + "_np" +
      std::to_string(n_primary) + "_r" + std::to_string(rounds) + ".bin";
  if (file_exists(path)) {
    RADAR_LOG(kInfo) << bundle.id << ": loading cached profiles " << path;
    return attack::load_profiles(path);
  }
  RADAR_LOG(kInfo) << bundle.id << ": running " << rounds
                   << " knowledgeable rounds (assumed G="
                   << assumed_group_size << ")...";
  ensure_engine(bundle);  // calibrate on the clean weights
  const quant::ArenaSnapshot clean = bundle.qmodel->snapshot();
  attack::KnowledgeableConfig kc;
  kc.assumed_group_size = assumed_group_size;
  attack::KnowledgeableAttacker attacker(kc);
  std::vector<attack::AttackResult> out;
  for (int r = 0; r < rounds; ++r) {
    Rng rng(0xF00D + static_cast<std::uint64_t>(r));
    data::Batch batch = bundle.dataset->attack_batch(
        16, 0x5EED00ull * (static_cast<std::uint64_t>(r) + 1));
    attack::AttackResult res =
        attacker.run(*bundle.qmodel, batch, n_primary, rng);
    res.accuracy_after = accuracy_on_subset(bundle, eval_subset);
    RADAR_LOG(kInfo) << bundle.id << ": round " << (r + 1) << "/" << rounds
                     << " flips " << res.flips.size() << ", acc "
                     << res.accuracy_after;
    out.push_back(std::move(res));
    bundle.qmodel->restore(clean);
  }
  attack::save_profiles(path, out);
  return out;
}

std::vector<attack::AttackResult> load_or_run_restricted_pbfa(
    ModelBundle& bundle, int n_bf, int rounds, std::vector<int> allowed_bits,
    const std::string& tag, int eval_subset) {
  const std::string path = model_cache_dir() + "/" + bundle.id + "_" + tag +
                           "_nbf" + std::to_string(n_bf) + "_r" +
                           std::to_string(rounds) + ".bin";
  if (file_exists(path)) {
    RADAR_LOG(kInfo) << bundle.id << ": loading cached profiles " << path;
    return attack::load_profiles(path);
  }
  RADAR_LOG(kInfo) << bundle.id << ": running " << rounds
                   << " bit-restricted PBFA rounds of " << n_bf
                   << " flips...";
  attack::PbfaConfig pc;
  pc.allowed_bits = std::move(allowed_bits);
  attack::Pbfa pbfa(pc);
  ensure_engine(bundle);  // calibrate on the clean weights
  const quant::ArenaSnapshot clean = bundle.qmodel->snapshot();
  std::vector<attack::AttackResult> out;
  for (int r = 0; r < rounds; ++r) {
    data::Batch batch = bundle.dataset->attack_batch(
        16, 0xB17B17ull * (static_cast<std::uint64_t>(r) + 1));
    attack::AttackResult res = pbfa.run(*bundle.qmodel, batch, n_bf);
    res.accuracy_after = accuracy_on_subset(bundle, eval_subset);
    RADAR_LOG(kInfo) << bundle.id << ": round " << (r + 1) << "/" << rounds
                     << " loss " << res.loss_before << " -> "
                     << res.loss_after << ", acc " << res.accuracy_after;
    out.push_back(std::move(res));
    bundle.qmodel->restore(clean);
  }
  attack::save_profiles(path, out);
  return out;
}

RecoveryOutcome replay_and_recover(ModelBundle& bundle,
                                   const attack::AttackResult& round,
                                   const core::RadarConfig& cfg, int n_bf,
                                   std::int64_t eval_subset,
                                   bool measure_attacked) {
  RADAR_REQUIRE(n_bf >= 0, "negative flip count");
  if (eval_subset > 0) ensure_engine(bundle);  // calibrate on clean weights
  const quant::ArenaSnapshot clean = bundle.qmodel->snapshot();

  core::RadarScheme scheme(cfg);
  scheme.attach(*bundle.qmodel);

  // Replay the first n_bf recorded flips (greedy PBFA prefix).
  const std::size_t take =
      std::min<std::size_t>(round.flips.size(), static_cast<std::size_t>(n_bf));
  std::vector<std::pair<std::size_t, std::int64_t>> sites;
  for (std::size_t i = 0; i < take; ++i) {
    const auto& f = round.flips[i];
    bundle.qmodel->flip_bit(f.layer, f.index, f.bit);
    sites.emplace_back(f.layer, f.index);
  }

  RecoveryOutcome out;
  out.flips_total = static_cast<std::int64_t>(take);
  // eval_subset == 0 requests detection-only replay (skips the accuracy
  // evaluations, which dominate the cost); measure_attacked=false skips
  // just the post-attack evaluation, which is identical across RADAR
  // configurations replaying the same round.
  if (eval_subset > 0 && measure_attacked)
    out.accuracy_attacked = accuracy_on_subset(bundle, eval_subset);

  const core::DetectionReport report = scheme.scan(*bundle.qmodel);
  out.flips_detected = core::count_detected_flips(scheme, report, sites);
  scheme.recover(*bundle.qmodel, report, core::RecoveryPolicy::kZeroOut);
  if (eval_subset > 0)
    out.accuracy_recovered = accuracy_on_subset(bundle, eval_subset);

  bundle.qmodel->restore(clean);
  return out;
}

RecoverySummary summarize_recovery(
    ModelBundle& bundle, const std::vector<attack::AttackResult>& rounds,
    const core::RadarConfig& cfg, int n_bf, std::int64_t eval_subset) {
  RecoverySummary s;
  for (const auto& round : rounds) {
    const RecoveryOutcome o =
        replay_and_recover(bundle, round, cfg, n_bf, eval_subset);
    s.mean_detected += static_cast<double>(o.flips_detected);
    s.mean_acc_attacked += o.accuracy_attacked;
    s.mean_acc_recovered += o.accuracy_recovered;
    ++s.rounds;
  }
  if (s.rounds > 0) {
    s.mean_detected /= s.rounds;
    s.mean_acc_attacked /= s.rounds;
    s.mean_acc_recovered /= s.rounds;
  }
  return s;
}

}  // namespace radar::exp
