#include "codes/fletcher.h"

#include "common/error.h"

namespace radar::codes {

std::uint32_t addition_checksum(std::span<const std::uint8_t> data,
                                int width) {
  RADAR_REQUIRE(width > 0 && width <= 32, "checksum width 1..32");
  const std::uint64_t mask =
      width == 32 ? 0xFFFFFFFFull : ((1ull << width) - 1ull);
  std::uint64_t sum = 0;
  for (const std::uint8_t b : data) sum = (sum + b) & mask;
  return static_cast<std::uint32_t>(sum);
}

std::uint16_t fletcher16(std::span<const std::uint8_t> data) {
  std::uint32_t a = 0, b = 0;
  for (const std::uint8_t byte : data) {
    a = (a + byte) % 255u;
    b = (b + a) % 255u;
  }
  return static_cast<std::uint16_t>((b << 8) | a);
}

std::uint32_t fletcher32(std::span<const std::uint8_t> data) {
  std::uint32_t a = 0, b = 0;
  std::size_t i = 0;
  while (i < data.size()) {
    std::uint32_t word = data[i];
    if (i + 1 < data.size()) word |= static_cast<std::uint32_t>(data[i + 1])
                                     << 8;
    i += 2;
    a = (a + word) % 65535u;
    b = (b + a) % 65535u;
  }
  return (b << 16) | a;
}

}  // namespace radar::codes
