#include "codes/hamming.h"

#include "common/bits.h"
#include "common/error.h"

namespace radar::codes {

namespace {
/// Position of data bit i in the (1-based) Hamming codeword, skipping
/// power-of-two parity positions.
std::int64_t codeword_position(std::int64_t data_index) {
  // Walk positions 1,2,3,... skipping powers of two; the (data_index+1)-th
  // non-power-of-two position is the answer. Closed form iteration.
  std::int64_t pos = 0;
  std::int64_t seen = -1;
  while (seen < data_index) {
    ++pos;
    if ((pos & (pos - 1)) != 0) ++seen;  // not a power of two
  }
  return pos;
}
}  // namespace

int HammingSecDed::parity_bits_for(std::int64_t data_bits) {
  RADAR_REQUIRE(data_bits > 0, "need at least one data bit");
  int r = 0;
  while ((1LL << r) < data_bits + r + 1) ++r;
  return r;
}

HammingSecDed::HammingSecDed(std::int64_t data_bits)
    : data_bits_(data_bits), parity_bits_(parity_bits_for(data_bits)) {
  RADAR_REQUIRE(parity_bits_ <= 31, "block too large");
}

std::uint32_t HammingSecDed::syndrome_and_parity(
    std::span<const std::uint8_t> data, bool& overall) const {
  std::uint32_t syndrome = 0;
  bool parity = false;
  for (std::int64_t i = 0; i < data_bits_; ++i) {
    if (!data_bit(data, i)) continue;
    syndrome ^= static_cast<std::uint32_t>(codeword_position(i));
    parity = !parity;
  }
  overall = parity;
  return syndrome;
}

std::uint32_t HammingSecDed::encode(std::span<const std::uint8_t> data) const {
  RADAR_REQUIRE(static_cast<std::int64_t>(data.size()) * 8 >= data_bits_,
                "data buffer too small");
  bool overall = false;
  const std::uint32_t syndrome = syndrome_and_parity(data, overall);
  // Stored parity bits are chosen so a clean word has syndrome zero; the
  // syndrome of data alone *is* that parity vector. Overall parity covers
  // data + parity bits.
  bool total = overall;
  for (int b = 0; b < parity_bits_; ++b)
    if ((syndrome >> b) & 1u) total = !total;
  return syndrome | (static_cast<std::uint32_t>(total) << parity_bits_);
}

SecDedResult HammingSecDed::check(std::span<const std::uint8_t> data,
                                  std::uint32_t stored_check) const {
  bool overall = false;
  const std::uint32_t syndrome = syndrome_and_parity(data, overall);
  const std::uint32_t stored_syndrome =
      stored_check & ((1u << parity_bits_) - 1u);
  const bool stored_total = (stored_check >> parity_bits_) & 1u;

  bool total_now = overall;
  for (int b = 0; b < parity_bits_; ++b)
    if ((stored_syndrome >> b) & 1u) total_now = !total_now;

  const std::uint32_t diff = syndrome ^ stored_syndrome;
  const bool parity_mismatch = (total_now != stored_total);

  SecDedResult r;
  if (diff == 0 && !parity_mismatch) {
    r.ok = true;
  } else if (parity_mismatch) {
    // Odd number of errors — treat as a correctable single error.
    r.corrected = true;
    r.error_bit = diff == 0 ? -1 : static_cast<std::int64_t>(diff);
  } else {
    // Syndrome mismatch with even parity: double error.
    r.double_error = true;
  }
  return r;
}

std::uint32_t HammingSecDed::encode_i8(
    std::span<const std::int8_t> data) const {
  return encode(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

SecDedResult HammingSecDed::check_i8(std::span<const std::int8_t> data,
                                     std::uint32_t stored_check) const {
  return check(std::span<const std::uint8_t>(
                   reinterpret_cast<const std::uint8_t*>(data.data()),
                   data.size()),
               stored_check);
}

}  // namespace radar::codes
