#include "codes/crc.h"

#include "common/cpu_features.h"
#include "common/error.h"

namespace radar::codes {

// Generator choices: primitive polynomials, so x has order 2^width - 1 and
// every double-bit error within that span yields a nonzero syndrome
// (HD >= 3). CRC-7 covers G=8 groups (64 bits << 127), CRC-10 covers
// MSB-only streams at G=512 (512 bits << 1023), CRC-13 covers full G=512
// groups (4096 bits << 8191) — exactly the configurations of Table V.
CrcSpec CrcSpec::crc7() { return {7, 0x65, "CRC-7"}; }
CrcSpec CrcSpec::crc10() { return {10, 0x009, "CRC-10"}; }
CrcSpec CrcSpec::crc13() { return {13, 0x001B, "CRC-13"}; }
CrcSpec CrcSpec::crc16_ccitt() { return {16, 0x1021, "CRC-16-CCITT"}; }
CrcSpec CrcSpec::crc32() { return {32, 0x04C11DB7, "CRC-32"}; }

Crc::Crc(const CrcSpec& spec) : spec_(spec) {
  RADAR_REQUIRE(spec.width >= 3 && spec.width <= 32, "CRC width 3..32");
  mask_ = spec.width == 32 ? 0xFFFFFFFFu
                           : ((1u << spec.width) - 1u);
  top_bit_ = 1u << (spec.width - 1);
  la_shift_ = 32 - spec.width;
  RADAR_REQUIRE((spec.poly & ~mask_) == 0, "polynomial wider than CRC");
  // Left-aligned tables: the register lives at bit 31, so the same byte
  // step — and the same tables — work for every width, including < 8
  // (which the old right-aligned table could not serve). tables_[0][b] is
  // one byte step from a zero register; tables_[k] advances tables_[k-1]
  // by one further zero-byte step, giving the slicing-by-8 kernel its
  // "byte b, k+1 steps ago" lookups.
  const std::uint32_t poly_la = spec.poly << la_shift_;
  tables_.resize(16 * 256);
  for (std::uint32_t byte = 0; byte < 256; ++byte) {
    std::uint32_t reg = byte << 24;
    for (int b = 0; b < 8; ++b)
      reg = (reg & 0x80000000u) ? (reg << 1) ^ poly_la : reg << 1;
    tables_[byte] = reg;
  }
  for (int k = 1; k < 16; ++k) {
    for (std::uint32_t byte = 0; byte < 256; ++byte) {
      const std::uint32_t prev = tables_[(k - 1) * 256 + byte];
      tables_[k * 256 + byte] = (prev << 8) ^ tables_[prev >> 24];
    }
  }
}

std::uint32_t Crc::compute_bitwise(std::span<const std::uint8_t> data) const {
  std::uint32_t reg = 0;
  for (const std::uint8_t byte : data) {
    for (int b = 7; b >= 0; --b) {
      const bool in_bit = (byte >> b) & 1u;
      const bool top = (reg & top_bit_) != 0;
      reg = (reg << 1) & mask_;
      if (top != in_bit) reg ^= spec_.poly;
    }
  }
  return reg;
}

std::uint32_t Crc::compute(std::span<const std::uint8_t> data) const {
  // The wider kernel is pure ILP (more independent table lookups per
  // iteration), so it rides the same dispatch switch as the true SIMD
  // kernels: scalar stays the differential reference, every wider tier
  // takes the 16-byte step. Both fold the identical polynomial algebra,
  // so results are bit-equal by construction (and tested).
  return cpu::active_level() == cpu::SimdLevel::kScalar
             ? compute_sliced8(data)
             : compute_sliced16(data);
}

std::uint32_t Crc::compute_sliced8(
    std::span<const std::uint8_t> data) const {
  const std::uint32_t* t = tables_.data();
  const std::uint8_t* d = data.data();
  std::size_t n = data.size();
  std::uint32_t reg = 0;  // left-aligned at bit 31
  // Slicing-by-8: fold 4 data bytes into the register, then advance all
  // twelve byte positions (4 register bytes + 8 data bytes) through their
  // per-distance tables in one XOR tree — 8 loads per 8 bytes instead of
  // 8 dependent byte steps.
  while (n >= 8) {
    reg ^= (static_cast<std::uint32_t>(d[0]) << 24) |
           (static_cast<std::uint32_t>(d[1]) << 16) |
           (static_cast<std::uint32_t>(d[2]) << 8) |
           static_cast<std::uint32_t>(d[3]);
    reg = t[7 * 256 + (reg >> 24)] ^ t[6 * 256 + ((reg >> 16) & 0xFFu)] ^
          t[5 * 256 + ((reg >> 8) & 0xFFu)] ^ t[4 * 256 + (reg & 0xFFu)] ^
          t[3 * 256 + d[4]] ^ t[2 * 256 + d[5]] ^ t[1 * 256 + d[6]] ^
          t[0 * 256 + d[7]];
    d += 8;
    n -= 8;
  }
  for (; n > 0; --n, ++d) reg = (reg << 8) ^ t[(reg >> 24) ^ *d];
  return reg >> la_shift_;
}

std::uint32_t Crc::compute_sliced16(
    std::span<const std::uint8_t> data) const {
  const std::uint32_t* t = tables_.data();
  const std::uint8_t* d = data.data();
  std::size_t n = data.size();
  std::uint32_t reg = 0;  // left-aligned at bit 31
  // Slicing-by-16: a byte j positions before the end of the step needs
  // j-1 further zero-byte advances, hence table j-1 — the 4 register
  // bytes land in tables 15..12, the remaining 12 data bytes in 11..0.
  while (n >= 16) {
    reg ^= (static_cast<std::uint32_t>(d[0]) << 24) |
           (static_cast<std::uint32_t>(d[1]) << 16) |
           (static_cast<std::uint32_t>(d[2]) << 8) |
           static_cast<std::uint32_t>(d[3]);
    reg = t[15 * 256 + (reg >> 24)] ^ t[14 * 256 + ((reg >> 16) & 0xFFu)] ^
          t[13 * 256 + ((reg >> 8) & 0xFFu)] ^ t[12 * 256 + (reg & 0xFFu)] ^
          t[11 * 256 + d[4]] ^ t[10 * 256 + d[5]] ^ t[9 * 256 + d[6]] ^
          t[8 * 256 + d[7]] ^ t[7 * 256 + d[8]] ^ t[6 * 256 + d[9]] ^
          t[5 * 256 + d[10]] ^ t[4 * 256 + d[11]] ^ t[3 * 256 + d[12]] ^
          t[2 * 256 + d[13]] ^ t[1 * 256 + d[14]] ^ t[0 * 256 + d[15]];
    d += 16;
    n -= 16;
  }
  for (; n > 0; --n, ++d) reg = (reg << 8) ^ t[(reg >> 24) ^ *d];
  return reg >> la_shift_;
}

std::uint32_t Crc::compute_i8(std::span<const std::int8_t> data) const {
  return compute(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

}  // namespace radar::codes
