#include "codes/crc.h"

#include "common/error.h"

namespace radar::codes {

// Generator choices: primitive polynomials, so x has order 2^width - 1 and
// every double-bit error within that span yields a nonzero syndrome
// (HD >= 3). CRC-7 covers G=8 groups (64 bits << 127), CRC-10 covers
// MSB-only streams at G=512 (512 bits << 1023), CRC-13 covers full G=512
// groups (4096 bits << 8191) — exactly the configurations of Table V.
CrcSpec CrcSpec::crc7() { return {7, 0x65, "CRC-7"}; }
CrcSpec CrcSpec::crc10() { return {10, 0x009, "CRC-10"}; }
CrcSpec CrcSpec::crc13() { return {13, 0x001B, "CRC-13"}; }
CrcSpec CrcSpec::crc16_ccitt() { return {16, 0x1021, "CRC-16-CCITT"}; }
CrcSpec CrcSpec::crc32() { return {32, 0x04C11DB7, "CRC-32"}; }

Crc::Crc(const CrcSpec& spec) : spec_(spec) {
  RADAR_REQUIRE(spec.width >= 3 && spec.width <= 32, "CRC width 3..32");
  mask_ = spec.width == 32 ? 0xFFFFFFFFu
                           : ((1u << spec.width) - 1u);
  top_bit_ = 1u << (spec.width - 1);
  RADAR_REQUIRE((spec.poly & ~mask_) == 0, "polynomial wider than CRC");
  // Build the byte-at-a-time table.
  table_.resize(256);
  for (std::uint32_t byte = 0; byte < 256; ++byte) {
    std::uint32_t reg =
        (spec.width >= 8) ? (byte << (spec.width - 8)) & mask_
                          : 0;
    if (spec.width < 8) {
      // Narrow CRCs: shift the byte in bit by bit.
      reg = 0;
      for (int b = 7; b >= 0; --b) {
        const bool in_bit = (byte >> b) & 1u;
        const bool top = (reg & top_bit_) != 0;
        reg = (reg << 1) & mask_;
        if (top != in_bit) reg ^= spec.poly;
      }
      table_[byte] = reg;
      continue;
    }
    for (int b = 0; b < 8; ++b) {
      if (reg & top_bit_)
        reg = ((reg << 1) ^ spec.poly) & mask_;
      else
        reg = (reg << 1) & mask_;
    }
    table_[byte] = reg;
  }
}

std::uint32_t Crc::compute_bitwise(std::span<const std::uint8_t> data) const {
  std::uint32_t reg = 0;
  for (const std::uint8_t byte : data) {
    for (int b = 7; b >= 0; --b) {
      const bool in_bit = (byte >> b) & 1u;
      const bool top = (reg & top_bit_) != 0;
      reg = (reg << 1) & mask_;
      if (top != in_bit) reg ^= spec_.poly;
    }
  }
  return reg;
}

std::uint32_t Crc::compute(std::span<const std::uint8_t> data) const {
  if (spec_.width < 8) return compute_bitwise(data);
  std::uint32_t reg = 0;
  for (const std::uint8_t byte : data) {
    const std::uint32_t idx = ((reg >> (spec_.width - 8)) ^ byte) & 0xFFu;
    reg = ((reg << 8) ^ table_[idx]) & mask_;
  }
  return reg;
}

std::uint32_t Crc::compute_i8(std::span<const std::int8_t> data) const {
  return compute(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

}  // namespace radar::codes
