// Cyclic redundancy checks with Koopman-selected polynomials.
//
// Baseline for the paper's Table V: CRC-7 / CRC-10 / CRC-13 achieve HD=3
// at the relevant block lengths (Koopman & Chakravarty, DSN'04) but cost
// `width` bits of storage per group and a bit-serial (or table-driven)
// pass over every byte. Both engines are provided; they produce identical
// codes (tested), the table engine being the fast path.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace radar::codes {

/// A CRC configuration. `poly` is the normal-form polynomial without the
/// implicit leading x^width term.
struct CrcSpec {
  int width = 13;
  std::uint32_t poly = 0x1CF5;
  std::string name = "CRC-13";

  // Presets used by the paper's comparison.
  static CrcSpec crc7();   ///< 0x65 — HD=3 to 56+ data bits (G=8 bytes)
  static CrcSpec crc10();  ///< 0x327 — MSB-only protection alternative
  static CrcSpec crc13();  ///< 0x1CF5 — HD=3 at 4096 data bits (G=512)
  static CrcSpec crc16_ccitt();
  static CrcSpec crc32();
};

class Crc {
 public:
  explicit Crc(const CrcSpec& spec);

  const CrcSpec& spec() const { return spec_; }

  /// Bit-serial reference implementation (MSB-first).
  std::uint32_t compute_bitwise(std::span<const std::uint8_t> data) const;

  /// Fast path; equals compute_bitwise. Works on a left-aligned (bit-31)
  /// register so one 16x256 table set serves every width 3..32 — narrow
  /// CRCs included. Dispatches on cpu::active_level(): the scalar tier
  /// consumes 8 bytes per step (slicing-by-8); wider tiers consume 16
  /// (slicing-by-16 — a wider independent-XOR tree for machines with the
  /// load ports to retire it, not lane-parallel SIMD: CRC's serial
  /// dependence leaves ILP as the lever).
  std::uint32_t compute(std::span<const std::uint8_t> data) const;

  /// Convenience for int8 weight groups.
  std::uint32_t compute_i8(std::span<const std::int8_t> data) const;

  /// Storage bits per protected group.
  int storage_bits() const { return spec_.width; }

 private:
  CrcSpec spec_;
  std::uint32_t mask_;
  std::uint32_t top_bit_;
  int la_shift_;  ///< 32 - width: left-alignment shift of the register
  /// tables_[k][b]: byte b advanced through k+1 zero-byte steps,
  /// left-aligned. tables_[0] is the classic byte-at-a-time table;
  /// tables_[1..7] feed the slicing-by-8 kernel, tables_[8..15] the
  /// slicing-by-16 kernel.
  std::vector<std::uint32_t> tables_;

  std::uint32_t compute_sliced8(std::span<const std::uint8_t> data) const;
  std::uint32_t compute_sliced16(std::span<const std::uint8_t> data) const;
};

}  // namespace radar::codes
