// Cyclic redundancy checks with Koopman-selected polynomials.
//
// Baseline for the paper's Table V: CRC-7 / CRC-10 / CRC-13 achieve HD=3
// at the relevant block lengths (Koopman & Chakravarty, DSN'04) but cost
// `width` bits of storage per group and a bit-serial (or table-driven)
// pass over every byte. Both engines are provided; they produce identical
// codes (tested), the table engine being the fast path.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace radar::codes {

/// A CRC configuration. `poly` is the normal-form polynomial without the
/// implicit leading x^width term.
struct CrcSpec {
  int width = 13;
  std::uint32_t poly = 0x1CF5;
  std::string name = "CRC-13";

  // Presets used by the paper's comparison.
  static CrcSpec crc7();   ///< 0x65 — HD=3 to 56+ data bits (G=8 bytes)
  static CrcSpec crc10();  ///< 0x327 — MSB-only protection alternative
  static CrcSpec crc13();  ///< 0x1CF5 — HD=3 at 4096 data bits (G=512)
  static CrcSpec crc16_ccitt();
  static CrcSpec crc32();
};

class Crc {
 public:
  explicit Crc(const CrcSpec& spec);

  const CrcSpec& spec() const { return spec_; }

  /// Bit-serial reference implementation (MSB-first).
  std::uint32_t compute_bitwise(std::span<const std::uint8_t> data) const;

  /// Table-driven (256-entry) implementation; equals compute_bitwise.
  std::uint32_t compute(std::span<const std::uint8_t> data) const;

  /// Convenience for int8 weight groups.
  std::uint32_t compute_i8(std::span<const std::int8_t> data) const;

  /// Storage bits per protected group.
  int storage_bits() const { return spec_.width; }

 private:
  CrcSpec spec_;
  std::uint32_t mask_;
  std::uint32_t top_bit_;
  std::vector<std::uint32_t> table_;
};

}  // namespace radar::codes
