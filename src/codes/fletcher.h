// Additional checksums from the Maxino taxonomy (ref [17] of the paper):
// Fletcher-16/32 and the plain two's-complement addition checksum RADAR's
// scheme is built on. Used for ablation benches comparing detection
// strength vs cost across checksum families.
#pragma once

#include <cstdint>
#include <span>

namespace radar::codes {

/// Plain two's-complement addition checksum (mod 2^width).
std::uint32_t addition_checksum(std::span<const std::uint8_t> data,
                                int width);

/// Fletcher-16: two running 8-bit one's-complement sums.
std::uint16_t fletcher16(std::span<const std::uint8_t> data);

/// Fletcher-32 over 16-bit words (odd trailing byte zero-padded).
std::uint32_t fletcher32(std::span<const std::uint8_t> data);

}  // namespace radar::codes
