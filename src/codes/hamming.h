// Hamming SEC-DED code over a block of data bits.
//
// The second baseline in the paper's §VII.B comparison: r parity bits with
// 2^r >= m + r + 1 plus one overall parity bit give single-error
// correction + double-error detection. For G = 8 weights (64 data bits)
// that is 7+1 bits; for G = 512 (4096 bits), 13+1 bits.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace radar::codes {

/// Outcome of a SEC-DED check.
struct SecDedResult {
  bool ok = false;             ///< no error detected
  bool corrected = false;      ///< single error found (and correctable)
  bool double_error = false;   ///< uncorrectable double error detected
  std::int64_t error_bit = -1; ///< data/parity position of a single error
};

class HammingSecDed {
 public:
  /// Code over `data_bits` payload bits.
  explicit HammingSecDed(std::int64_t data_bits);

  std::int64_t data_bits() const { return data_bits_; }
  /// Hamming parity bits (excluding the overall parity bit).
  int parity_bits() const { return parity_bits_; }
  /// Total stored check bits per block (parity + overall).
  int storage_bits() const { return parity_bits_ + 1; }

  /// Parity bits needed for m data bits (static helper for overhead
  /// tables).
  static int parity_bits_for(std::int64_t data_bits);

  /// Encode: returns the check word (parity bits | overall parity at MSB).
  std::uint32_t encode(std::span<const std::uint8_t> data) const;

  /// Check data against a stored check word.
  SecDedResult check(std::span<const std::uint8_t> data,
                     std::uint32_t stored_check) const;

  /// Convenience for int8 weight groups.
  std::uint32_t encode_i8(std::span<const std::int8_t> data) const;
  SecDedResult check_i8(std::span<const std::int8_t> data,
                        std::uint32_t stored_check) const;

 private:
  bool data_bit(std::span<const std::uint8_t> data, std::int64_t i) const {
    return (data[static_cast<std::size_t>(i >> 3)] >> (i & 7)) & 1u;
  }
  std::uint32_t syndrome_and_parity(std::span<const std::uint8_t> data,
                                    bool& overall) const;

  std::int64_t data_bits_;
  int parity_bits_;
};

}  // namespace radar::codes
