// GoldenGuard: integrity sidecar over a tenant's mmap'd golden copy.
//
// The v3 mmap path makes kReloadClean recovery zero-copy, but it also
// means the "clean" bytes live in the page cache backed by a file the
// process does not control: storage bitrot, a torn write by an external
// tool, or an eviction+refault after on-disk corruption silently turn
// the recovery source itself into an attack vector — recovery would then
// *install* corrupt weights with full confidence.
//
// At tenant load the guard snapshots per-range CRC-32s of the verified
// golden bytes (range granularity trades sidecar size against
// verification cost per recovery). Before any recovery trusts a mapped
// range, verify_range() recomputes the CRCs over the live mapping; a
// mismatch (or an armed `golden.torn_read` chaos fire) tells the host to
// fall back to the in-memory ArenaSnapshot and mark the tenant degraded
// until a fresh mapping re-verifies end-to-end.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

namespace radar::serve {

class GoldenGuard {
 public:
  /// Snapshot per-range CRCs over `golden` (the verified bytes at load).
  /// `range_bytes` must be positive; the final range may be short.
  void build(std::span<const std::int8_t> golden, std::int64_t range_bytes);

  bool built() const { return range_bytes_ > 0; }
  std::int64_t range_bytes() const { return range_bytes_; }
  std::size_t num_ranges() const { return crcs_.size(); }

  /// Recompute CRCs over `bytes` for every range overlapping
  /// [begin, end) and compare against the sidecar. `bytes` must be the
  /// same length build() saw. Fires the `golden.torn_read` chaos point —
  /// an armed fire reports a mismatch without touching the bytes, which
  /// is how tests and CI script a torn page deterministically.
  bool verify_range(std::span<const std::int8_t> bytes, std::int64_t begin,
                    std::int64_t end);

  /// Whole-copy verification (the heal path after re-mapping).
  bool verify_all(std::span<const std::int8_t> bytes) {
    return verify_range(bytes, 0, total_bytes_);
  }

  std::uint64_t ranges_verified() const {
    return verified_.load(std::memory_order_relaxed);
  }
  std::uint64_t mismatches() const {
    return mismatches_.load(std::memory_order_relaxed);
  }

 private:
  std::int64_t range_bytes_ = 0;
  std::int64_t total_bytes_ = 0;
  std::vector<std::uint32_t> crcs_;
  std::atomic<std::uint64_t> verified_{0};
  std::atomic<std::uint64_t> mismatches_{0};
};

}  // namespace radar::serve
