// ModelHost: the multi-tenant protection-as-a-service core.
//
// Each tenant is a signed deployment package loaded into its own
// QuantizedModel + IntegrityScheme (golden copy zero-copy via the v3
// mmap path when available) with a statically calibrated int8 inference
// engine. A pool of worker threads drains one bounded MPMC request
// queue — requests carry the tenant id, so a burst on one tenant borrows
// every idle worker — while a single background scanner thread runs
// budget-bounded scan slices across all tenants (most-overdue-first by
// coverage age, round-robin otherwise), epoch-validating every scan
// against the arena's seqlock guard (see core/scan_scheduler.h).
//
// Writers never stop traffic: fault injection (the test/loadgen hook for
// "rowhammer while serving") and reload-clean recovery both bracket
// their mutations in EpochGuard::WriterSection, which invalidates only
// the overlapping optimistic scans. When the scanner flags groups it
// recovers them immediately under a writer section and records
// detection latency relative to the last injection — the
// time-to-detect-under-traffic metric the load generator reports.
//
// Thread-safety contract: add_tenant() before start(); infer()/
// try_infer_async() from any number of threads while running;
// inject_faults(), set_scanning() and stats() from any thread. One
// engine per tenant is shared by all workers — its op program is
// immutable after calibration and all working memory is per-worker
// scratch, so concurrent forward_into calls are independent. Engine
// weight reads race recovery writes by design (that *is* run-time
// attack visibility); integrity verdicts are protected by the epoch
// protocol, inference outputs during an active attack are garbage by
// definition until recovery lands.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/scan_scheduler.h"
#include "exp/workspace.h"
#include "quant/weight_arena.h"
#include "serve/golden_guard.h"
#include "serve/latency_histogram.h"
#include "serve/request_queue.h"

namespace radar::serve {

struct TenantConfig {
  std::string name;          ///< routing key (unique per host)
  std::string package_path;  ///< signed deployment package (v2 or v3)
  std::string model_id = "tiny";  ///< reference model structure
  bool mmap_golden = true;   ///< zero-copy golden clean copy (v3 files)
};

struct ServeOptions {
  std::size_t workers = 2;            ///< inference worker threads
  std::size_t queue_capacity = 4096;  ///< bounded request queue depth
  bool scan = true;                   ///< start with scanning enabled
  std::int64_t scan_shard_bytes = 16 * 1024;  ///< sweep granule per tenant
  // Scan QoS: each scanner-thread turn runs one budget-bounded slice of
  // one tenant's sweep (dirty groups first, then round-robin chunks).
  // Negative = unlimited, zero = starved (coverage-age alarms fire);
  // see core/scan_scheduler.h for the exact semantics.
  std::int64_t scan_budget_us = 500;     ///< wall-time budget per slice
  std::int64_t scan_budget_bytes = -1;   ///< weight-byte budget per slice
  /// Coverage guarantee: a tenant whose last completed sweep is older
  /// than this is scanned first (preempting round-robin) and counts a
  /// coverage alarm in STATS. 0 = no deadline.
  std::int64_t coverage_period_ms = 5000;
  /// Pacing between slices: the scanner sleeps out the remainder of this
  /// interval after each slice (skipped while a tenant is overdue), so
  /// the default duty cycle is budget/interval, not 100% of a core.
  std::int64_t scan_interval_us = 2000;
  std::int64_t epoch_shard_bytes = quant::kDefaultEpochShardBytes;
  int epoch_max_retries = 64;  ///< optimistic attempts before quiescing
  core::RecoveryPolicy recovery = core::RecoveryPolicy::kReloadClean;
  // Graceful degradation: a tenant accumulating `quarantine_threshold`
  // detections inside `quarantine_window_ms` is quarantined — its
  // requests are shed with a distinct error while the scanner re-verifies
  // the full arena against the golden copy — then readmitted after a
  // backoff that doubles on each consecutive quarantine (capped) and
  // decays back once the tenant stays clean for a full window.
  int quarantine_threshold = 3;  ///< detections to trip (0: never)
  std::int64_t quarantine_window_ms = 2000;
  std::int64_t quarantine_backoff_ms = 250;  ///< first readmit delay
  std::int64_t quarantine_backoff_max_ms = 8000;
  // Deadline propagation: requests older than their deadline are dropped
  // by the workers with a distinct error instead of burning compute on
  // an answer nobody is waiting for. 0 = requests without an explicit
  // deadline never expire.
  std::int64_t default_deadline_ms = 0;
  /// RETRY-AFTER hint (ms) returned with queue-full sheds.
  std::int64_t shed_retry_ms = 20;
  // Watchdog: a supervisor thread consuming heartbeats from the scanner
  // and the worker pool. A scanner silent for `scanner_stall_ms` is torn
  // down (via the cooperative abort flag; chaos stalls poll it) and
  // restarted; a worker stuck in one request for `worker_stall_ms` has
  // that request failed out from under it and is flagged in STATS.
  bool watchdog = true;
  std::int64_t watchdog_interval_ms = 50;
  std::int64_t scanner_stall_ms = 1000;
  std::int64_t worker_stall_ms = 2000;
  // Degraded-golden fallback: per-range CRC sidecar granularity over the
  // mmap'd golden copy, and the re-open backoff once it fails
  // verification (doubles per failed heal attempt, capped).
  std::int64_t golden_range_bytes = 64 * 1024;
  std::int64_t reopen_backoff_ms = 100;
  std::int64_t reopen_backoff_max_ms = 5000;
};

struct InferenceResult {
  bool ok = false;
  int predicted = -1;           ///< argmax class of the first sample
  std::int64_t latency_ns = 0;  ///< submit -> completion (queue included)
  std::string error;            ///< set when !ok
  /// Client hint: retry after this many ms (shed / quarantined replies);
  /// -1 when retrying is pointless or the request succeeded.
  std::int64_t retry_after_ms = -1;
};

/// Point-in-time view of one tenant (see ModelHost::stats).
struct TenantStats {
  std::string name;
  bool golden_mmapped = false;
  std::uint64_t requests = 0, errors = 0;
  LatencyHistogram::Snapshot latency;
  std::uint64_t shards_scanned = 0, sweeps = 0;
  std::uint64_t epoch_retries = 0, epoch_fallbacks = 0;
  // Scan QoS telemetry (see ServeOptions::scan_budget_*).
  std::int64_t coverage_period_ms = -1;  ///< last sweep duration (-1: none)
  std::int64_t coverage_age_ms = 0;   ///< time since last completed sweep
  std::int64_t scan_bytes_per_sec = 0;  ///< bytes swept / scan-active time
  std::uint64_t coverage_alarms = 0;  ///< coverage deadline misses
  std::uint64_t scan_cursor = 0;  ///< sweep position (survives respawns)
  std::uint64_t dirty_pending = 0;  ///< queued priority rescans
  std::uint64_t writer_sections = 0;
  std::uint64_t detections = 0;        ///< flagged-shard events
  std::uint64_t groups_recovered = 0;  ///< groups repaired by the scanner
  std::uint64_t faults_injected = 0;
  std::int64_t last_ttd_ns = -1;  ///< inject -> first detection (-1: none)
  bool quarantined = false;       ///< currently shedding requests
  std::uint64_t quarantines = 0;  ///< times the tenant was quarantined
  std::uint64_t readmits = 0;     ///< times it was readmitted
  std::uint64_t shed_quarantined = 0;  ///< requests shed while quarantined
  /// Weight bytes rewritten by the quarantine's byte-exact golden scrub
  /// (corruption the scheme's codes could not see).
  std::uint64_t bytes_scrubbed = 0;
  std::uint64_t deadline_expired = 0;  ///< requests dropped past deadline
  std::uint64_t recover_failures = 0;  ///< recovery attempts that threw
  /// Degraded-golden state: the mmap'd golden copy failed its CRC
  /// sidecar; recovery is running from the in-memory snapshot until a
  /// package re-open verifies end-to-end.
  bool degraded = false;
  std::uint64_t degrades = 0;  ///< times the golden copy was demoted
  std::uint64_t heals = 0;     ///< times a re-open restored the mapping
};

struct HostStats {
  std::vector<TenantStats> tenants;
  std::uint64_t queue_rejected = 0;  ///< open-loop pushes shed at the queue
  std::uint64_t queue_timeouts = 0;  ///< deadline pushes that gave up
  bool scanning = false;
  std::uint64_t scanner_restarts = 0;  ///< watchdog scanner restarts
  std::uint64_t scanner_crashes = 0;   ///< scanner thread deaths caught
  std::uint64_t worker_flags = 0;      ///< requests failed by the watchdog
  std::uint64_t workers_wedged = 0;    ///< workers currently flagged wedged
  std::uint64_t total_detections() const {
    std::uint64_t n = 0;
    for (const auto& t : tenants) n += t.detections;
    return n;
  }
  /// One-line JSON (daemon STATS reply / loadgen artifact).
  std::string to_json() const;
};

class ModelHost {
 public:
  explicit ModelHost(ServeOptions opts = {});
  ~ModelHost();

  ModelHost(const ModelHost&) = delete;
  ModelHost& operator=(const ModelHost&) = delete;

  /// Load, verify and calibrate one tenant (before start()). Throws on a
  /// package that fails verification — a tampered artifact must not
  /// enter service. Returns the tenant index.
  std::size_t add_tenant(const TenantConfig& cfg);

  std::size_t num_tenants() const { return tenants_.size(); }
  const std::string& tenant_name(std::size_t t) const;
  /// Index of a tenant by name, or npos when unknown.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find_tenant(const std::string& name) const;
  /// The tenant's dataset (request inputs for harnesses and the daemon).
  const data::SyntheticDataset& dataset(std::size_t t) const;

  void start();
  void stop();
  bool running() const { return running_; }

  /// Synchronous inference: enqueue and wait. `input` is NCHW (any batch
  /// size; `predicted` reports sample 0). `deadline_ms` bounds the whole
  /// request (0: ServeOptions::default_deadline_ms; that too 0: no
  /// deadline — blocks for queue capacity). With a deadline the enqueue
  /// waits at most the remaining budget and workers drop the request
  /// once it expires.
  InferenceResult infer(std::size_t tenant, const nn::Tensor& input,
                        std::int64_t deadline_ms = 0);

  /// Open-loop submission: never blocks; false when the queue is full
  /// (the request is shed and counted). `input` must stay alive until
  /// the future resolves. `deadline_ms` as in infer().
  bool try_infer_async(std::size_t tenant, const nn::Tensor& input,
                       std::future<InferenceResult>& out,
                       std::int64_t deadline_ms = 0);

  void set_scanning(bool on) { scanning_ = on; }
  bool scanning() const { return scanning_; }

  /// Flip `flips` random weight MSBs of one tenant under a writer
  /// section — the live-traffic fault injector. Records the injection
  /// time so the scanner can report time-to-detect. Returns flips made.
  std::size_t inject_faults(std::size_t tenant, int flips,
                            std::uint64_t seed);

  /// Rowhammer-burst injector: hammer `rows` victim DRAM rows of the
  /// tenant's arena (spatially correlated flips, see attack/rowhammer.h)
  /// under a writer section. Returns the weight flips that landed.
  std::size_t inject_rowhammer(std::size_t tenant, int rows,
                               std::int64_t activations, bool double_sided,
                               std::uint64_t seed);

  HostStats stats() const;
  /// Zero the latency histograms and request counters (phase boundaries
  /// in the load generator); scan/detection counters are preserved.
  void reset_latency_stats();

 private:
  struct Request {
    std::size_t tenant = 0;
    const nn::Tensor* input = nullptr;
    std::chrono::steady_clock::time_point t_submit;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
    std::promise<InferenceResult> promise;
  };

  struct Tenant {
    TenantConfig cfg;
    exp::ModelBundle bundle;
    std::unique_ptr<core::IntegrityScheme> scheme;
    std::unique_ptr<qnn::InferenceEngine> engine;
    bool golden_mmapped = false;

    // Scanner-thread state. The scheduler lives with the tenant, not the
    // scanner thread, so a watchdog respawn resumes the sweep exactly
    // where the stalled thread left it (cursor, dirty queue and all).
    core::ScanScheduler scheduler;
    core::DetectionReport recover_report;
    std::int64_t scan_active_ns = 0;  ///< cumulative slice time
    bool coverage_alarm_armed = false;  ///< one alarm per missed period

    // Quarantine bookkeeping. `quarantined` gates the workers (which
    // also read `readmit_at_ns` for the RETRY-AFTER hint); the rest is
    // scanner-thread private (window of recent detection timestamps and
    // the current backoff).
    std::atomic<bool> quarantined{false};
    std::vector<std::int64_t> detect_window_ns;
    std::atomic<std::int64_t> readmit_at_ns{0};
    std::int64_t backoff_ms = 0;
    std::int64_t last_readmit_ns = -1;

    // Degraded-golden fallback. The guard snapshots per-range CRCs of
    // the verified mmap'd golden at load; `fallback_snapshot` is the
    // in-memory clean copy recovery switches to when the mapping fails
    // verification. `reopen_*` (scanner-thread private) pace the heal
    // attempts; `degraded` is read by stats() from any thread.
    GoldenGuard golden_guard;
    std::shared_ptr<quant::ArenaSnapshot> fallback_snapshot;
    std::atomic<bool> degraded{false};
    std::int64_t reopen_at_ns = 0;
    std::int64_t reopen_backoff_ms = 0;

    // Cross-thread stats.
    std::atomic<std::uint64_t> requests{0}, errors{0};
    std::atomic<std::uint64_t> detections{0}, groups_recovered{0};
    std::atomic<std::uint64_t> faults_injected{0};
    std::atomic<std::uint64_t> quarantines{0}, readmits{0};
    std::atomic<std::uint64_t> shed_quarantined{0};
    std::atomic<std::uint64_t> bytes_scrubbed{0};
    std::atomic<std::uint64_t> deadline_expired{0};
    std::atomic<std::uint64_t> recover_failures{0};
    std::atomic<std::uint64_t> degrades{0}, heals{0};
    std::atomic<std::int64_t> pending_inject_ns{-1};  ///< steady ns
    std::atomic<std::int64_t> last_ttd_ns{-1};
    // Published copies of the scanner's private counters.
    std::atomic<std::uint64_t> shards_scanned{0}, sweeps{0};
    std::atomic<std::uint64_t> epoch_retries{0}, epoch_fallbacks{0};
    std::atomic<std::uint64_t> coverage_alarms{0};
    std::atomic<std::uint64_t> scan_cursor{0}, dirty_pending{0};
    std::atomic<std::int64_t> scan_bytes{0}, scan_ns{0};
    std::atomic<std::int64_t> sweep_end_ns{-1};  ///< last wrap (steady ns)
    std::atomic<std::int64_t> sweep_ms{-1};      ///< last sweep duration
  };

  struct Worker {
    /// Histograms are built in place (atomics are immovable).
    explicit Worker(std::size_t tenants) : hist(tenants) {}
    std::thread thread;
    qnn::QnnScratch scratch;
    nn::Tensor logits;
    /// One histogram per tenant; merged by stats().
    std::vector<LatencyHistogram> hist;

    /// The in-flight request, stealable by the watchdog: the worker
    /// parks the promise here before forward() and reclaims it after —
    /// unless the watchdog already failed it (serial mismatch / !active),
    /// in which case the late result is dropped. `busy_since_ns` is the
    /// heartbeat (-1 while idle).
    struct InFlight {
      std::mutex mu;
      bool active = false;
      std::uint64_t serial = 0;
      std::size_t tenant = 0;
      std::promise<InferenceResult> promise;
    };
    InFlight inflight;
    std::atomic<std::int64_t> busy_since_ns{-1};
    std::atomic<bool> wedged{false};
  };

  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void worker_loop(std::size_t wi);
  void scanner_loop();
  void watchdog_loop();
  /// Run one budget-bounded scan slice of one tenant; recover + account
  /// on detection. Returns the slice outcome (for pacing).
  core::ScanScheduler::Slice scan_step(Tenant& t);
  /// Scanner thread: raise the tenant's coverage alarm when its sweep
  /// age exceeds the coverage period. Checked for EVERY tenant on every
  /// scanner iteration — the overdue-first pick must not starve the
  /// alarms of the tenants it passes over.
  void check_coverage(Tenant& t);
  /// Scanner thread: verify the mmap'd golden bytes for [b0,b1) before
  /// recovery trusts them; on mismatch degrade to the snapshot fallback.
  void ensure_golden(Tenant& t, std::int64_t b0, std::int64_t b1);
  void degrade_tenant(Tenant& t);
  /// Scanner thread: re-open + re-verify the package of a degraded
  /// tenant once its backoff expires; restore the mapping on success.
  void maybe_heal(Tenant& t);
  /// Scanner thread: push a detection into the tenant's window and trip
  /// (or extend) the quarantine when it fills.
  void note_detection(Tenant& t);
  /// Scanner thread: quarantine `t` — full-arena re-verify + repair
  /// against the golden copy, then arm the readmission backoff.
  void quarantine_tenant(Tenant& t);
  /// Scanner thread: readmit a quarantined tenant whose backoff expired;
  /// decay the backoff of tenants that stayed clean for a full window.
  void maybe_readmit(Tenant& t);

  ServeOptions opts_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::unique_ptr<BoundedQueue<Request>> queue_;
  std::vector<std::unique_ptr<Worker>> workers_;
  /// Guards scanner_thread_ itself: the watchdog joins + respawns it
  /// while stop() may be tearing it down.
  std::mutex scanner_mu_;
  std::thread scanner_thread_;
  std::atomic<bool> scanning_{true};
  std::atomic<bool> stop_scanner_{false};
  /// Cooperative teardown flag the watchdog raises before joining a
  /// stalled scanner; chaos stalls poll it so joins stay bounded.
  std::atomic<bool> scanner_abort_{false};
  std::atomic<std::int64_t> scanner_heartbeat_ns_{-1};
  std::atomic<std::uint64_t> scanner_restarts_{0};
  std::atomic<std::uint64_t> scanner_crashes_{0};
  std::atomic<std::uint64_t> worker_flags_{0};
  std::thread watchdog_thread_;
  std::atomic<bool> stop_watchdog_{false};
  bool running_ = false;
};

}  // namespace radar::serve
