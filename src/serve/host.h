// ModelHost: the multi-tenant protection-as-a-service core.
//
// Each tenant is a signed deployment package loaded into its own
// QuantizedModel + IntegrityScheme (golden copy zero-copy via the v3
// mmap path when available) with a statically calibrated int8 inference
// engine. A pool of worker threads drains one bounded MPMC request
// queue — requests carry the tenant id, so a burst on one tenant borrows
// every idle worker — while a single background scanner thread
// round-robins byte-range shards across all tenants, epoch-validating
// every scan against the arena's seqlock guard (see serve/scanner.h).
//
// Writers never stop traffic: fault injection (the test/loadgen hook for
// "rowhammer while serving") and reload-clean recovery both bracket
// their mutations in EpochGuard::WriterSection, which invalidates only
// the overlapping optimistic scans. When the scanner flags groups it
// recovers them immediately under a writer section and records
// detection latency relative to the last injection — the
// time-to-detect-under-traffic metric the load generator reports.
//
// Thread-safety contract: add_tenant() before start(); infer()/
// try_infer_async() from any number of threads while running;
// inject_faults(), set_scanning() and stats() from any thread. One
// engine per tenant is shared by all workers — its op program is
// immutable after calibration and all working memory is per-worker
// scratch, so concurrent forward_into calls are independent. Engine
// weight reads race recovery writes by design (that *is* run-time
// attack visibility); integrity verdicts are protected by the epoch
// protocol, inference outputs during an active attack are garbage by
// definition until recovery lands.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exp/workspace.h"
#include "serve/latency_histogram.h"
#include "serve/request_queue.h"
#include "serve/scanner.h"

namespace radar::serve {

struct TenantConfig {
  std::string name;          ///< routing key (unique per host)
  std::string package_path;  ///< signed deployment package (v2 or v3)
  std::string model_id = "tiny";  ///< reference model structure
  bool mmap_golden = true;   ///< zero-copy golden clean copy (v3 files)
};

struct ServeOptions {
  std::size_t workers = 2;            ///< inference worker threads
  std::size_t queue_capacity = 4096;  ///< bounded request queue depth
  bool scan = true;                   ///< start with scanning enabled
  std::int64_t scan_shard_bytes = 16 * 1024;  ///< sweep granule per tenant
  std::int64_t epoch_shard_bytes = quant::kDefaultEpochShardBytes;
  int epoch_max_retries = 64;  ///< optimistic attempts before quiescing
  core::RecoveryPolicy recovery = core::RecoveryPolicy::kReloadClean;
  // Graceful degradation: a tenant accumulating `quarantine_threshold`
  // detections inside `quarantine_window_ms` is quarantined — its
  // requests are shed with a distinct error while the scanner re-verifies
  // the full arena against the golden copy — then readmitted after a
  // backoff that doubles on each consecutive quarantine (capped) and
  // decays back once the tenant stays clean for a full window.
  int quarantine_threshold = 3;  ///< detections to trip (0: never)
  std::int64_t quarantine_window_ms = 2000;
  std::int64_t quarantine_backoff_ms = 250;  ///< first readmit delay
  std::int64_t quarantine_backoff_max_ms = 8000;
};

struct InferenceResult {
  bool ok = false;
  int predicted = -1;           ///< argmax class of the first sample
  std::int64_t latency_ns = 0;  ///< submit -> completion (queue included)
  std::string error;            ///< set when !ok
};

/// Point-in-time view of one tenant (see ModelHost::stats).
struct TenantStats {
  std::string name;
  bool golden_mmapped = false;
  std::uint64_t requests = 0, errors = 0;
  LatencyHistogram::Snapshot latency;
  std::uint64_t shards_scanned = 0, sweeps = 0;
  std::uint64_t epoch_retries = 0, epoch_fallbacks = 0;
  std::uint64_t writer_sections = 0;
  std::uint64_t detections = 0;        ///< flagged-shard events
  std::uint64_t groups_recovered = 0;  ///< groups repaired by the scanner
  std::uint64_t faults_injected = 0;
  std::int64_t last_ttd_ns = -1;  ///< inject -> first detection (-1: none)
  bool quarantined = false;       ///< currently shedding requests
  std::uint64_t quarantines = 0;  ///< times the tenant was quarantined
  std::uint64_t readmits = 0;     ///< times it was readmitted
  std::uint64_t shed_quarantined = 0;  ///< requests shed while quarantined
  /// Weight bytes rewritten by the quarantine's byte-exact golden scrub
  /// (corruption the scheme's codes could not see).
  std::uint64_t bytes_scrubbed = 0;
};

struct HostStats {
  std::vector<TenantStats> tenants;
  std::uint64_t queue_rejected = 0;  ///< open-loop pushes shed at the queue
  bool scanning = false;
  std::uint64_t total_detections() const {
    std::uint64_t n = 0;
    for (const auto& t : tenants) n += t.detections;
    return n;
  }
  /// One-line JSON (daemon STATS reply / loadgen artifact).
  std::string to_json() const;
};

class ModelHost {
 public:
  explicit ModelHost(ServeOptions opts = {});
  ~ModelHost();

  ModelHost(const ModelHost&) = delete;
  ModelHost& operator=(const ModelHost&) = delete;

  /// Load, verify and calibrate one tenant (before start()). Throws on a
  /// package that fails verification — a tampered artifact must not
  /// enter service. Returns the tenant index.
  std::size_t add_tenant(const TenantConfig& cfg);

  std::size_t num_tenants() const { return tenants_.size(); }
  const std::string& tenant_name(std::size_t t) const;
  /// Index of a tenant by name, or npos when unknown.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find_tenant(const std::string& name) const;
  /// The tenant's dataset (request inputs for harnesses and the daemon).
  const data::SyntheticDataset& dataset(std::size_t t) const;

  void start();
  void stop();
  bool running() const { return running_; }

  /// Synchronous inference: enqueue and wait. `input` is NCHW (any batch
  /// size; `predicted` reports sample 0). Blocks for queue capacity.
  InferenceResult infer(std::size_t tenant, const nn::Tensor& input);

  /// Open-loop submission: never blocks; false when the queue is full
  /// (the request is shed and counted). `input` must stay alive until
  /// the future resolves.
  bool try_infer_async(std::size_t tenant, const nn::Tensor& input,
                       std::future<InferenceResult>& out);

  void set_scanning(bool on) { scanning_ = on; }
  bool scanning() const { return scanning_; }

  /// Flip `flips` random weight MSBs of one tenant under a writer
  /// section — the live-traffic fault injector. Records the injection
  /// time so the scanner can report time-to-detect. Returns flips made.
  std::size_t inject_faults(std::size_t tenant, int flips,
                            std::uint64_t seed);

  /// Rowhammer-burst injector: hammer `rows` victim DRAM rows of the
  /// tenant's arena (spatially correlated flips, see attack/rowhammer.h)
  /// under a writer section. Returns the weight flips that landed.
  std::size_t inject_rowhammer(std::size_t tenant, int rows,
                               std::int64_t activations, bool double_sided,
                               std::uint64_t seed);

  HostStats stats() const;
  /// Zero the latency histograms and request counters (phase boundaries
  /// in the load generator); scan/detection counters are preserved.
  void reset_latency_stats();

 private:
  struct Request {
    std::size_t tenant = 0;
    const nn::Tensor* input = nullptr;
    std::chrono::steady_clock::time_point t_submit;
    std::promise<InferenceResult> promise;
  };

  struct Tenant {
    TenantConfig cfg;
    exp::ModelBundle bundle;
    std::unique_ptr<core::IntegrityScheme> scheme;
    std::unique_ptr<qnn::InferenceEngine> engine;
    bool golden_mmapped = false;

    // Scanner-thread state.
    ShardScanner scanner;
    std::vector<std::int64_t> flag_buf;
    core::DetectionReport recover_report;

    // Quarantine bookkeeping. `quarantined` gates the workers; the rest
    // is scanner-thread private (window of recent detection timestamps,
    // the readmission deadline and the current backoff).
    std::atomic<bool> quarantined{false};
    std::vector<std::int64_t> detect_window_ns;
    std::int64_t readmit_at_ns = 0;
    std::int64_t backoff_ms = 0;
    std::int64_t last_readmit_ns = -1;

    // Cross-thread stats.
    std::atomic<std::uint64_t> requests{0}, errors{0};
    std::atomic<std::uint64_t> detections{0}, groups_recovered{0};
    std::atomic<std::uint64_t> faults_injected{0};
    std::atomic<std::uint64_t> quarantines{0}, readmits{0};
    std::atomic<std::uint64_t> shed_quarantined{0};
    std::atomic<std::uint64_t> bytes_scrubbed{0};
    std::atomic<std::int64_t> pending_inject_ns{-1};  ///< steady ns
    std::atomic<std::int64_t> last_ttd_ns{-1};
    // Published copies of the scanner's private counters.
    std::atomic<std::uint64_t> shards_scanned{0}, sweeps{0};
    std::atomic<std::uint64_t> epoch_retries{0}, epoch_fallbacks{0};
  };

  struct Worker {
    /// Histograms are built in place (atomics are immovable).
    explicit Worker(std::size_t tenants) : hist(tenants) {}
    std::thread thread;
    qnn::QnnScratch scratch;
    nn::Tensor logits;
    /// One histogram per tenant; merged by stats().
    std::vector<LatencyHistogram> hist;
  };

  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void worker_loop(std::size_t wi);
  void scanner_loop();
  /// Scan one shard of one tenant; recover + account on detection.
  void scan_step(Tenant& t);
  /// Scanner thread: push a detection into the tenant's window and trip
  /// (or extend) the quarantine when it fills.
  void note_detection(Tenant& t);
  /// Scanner thread: quarantine `t` — full-arena re-verify + repair
  /// against the golden copy, then arm the readmission backoff.
  void quarantine_tenant(Tenant& t);
  /// Scanner thread: readmit a quarantined tenant whose backoff expired;
  /// decay the backoff of tenants that stayed clean for a full window.
  void maybe_readmit(Tenant& t);

  ServeOptions opts_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::unique_ptr<BoundedQueue<Request>> queue_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread scanner_thread_;
  std::atomic<bool> scanning_{true};
  std::atomic<bool> stop_scanner_{false};
  bool running_ = false;
};

}  // namespace radar::serve
