#include "serve/golden_guard.h"

#include <algorithm>

#include "codes/crc.h"
#include "common/error.h"
#include "common/fault_points.h"
#include "common/sigbus_guard.h"

namespace radar::serve {

namespace {

std::uint32_t range_crc(std::span<const std::int8_t> bytes) {
  codes::Crc crc(codes::CrcSpec::crc32());
  return crc.compute_i8(bytes);
}

}  // namespace

void GoldenGuard::build(std::span<const std::int8_t> golden,
                        std::int64_t range_bytes) {
  RADAR_REQUIRE(range_bytes > 0, "GoldenGuard range_bytes must be > 0");
  range_bytes_ = range_bytes;
  total_bytes_ = static_cast<std::int64_t>(golden.size());
  crcs_.clear();
  for (std::int64_t b = 0; b < total_bytes_; b += range_bytes_) {
    const auto len = static_cast<std::size_t>(
        std::min(range_bytes_, total_bytes_ - b));
    crcs_.push_back(
        range_crc(golden.subspan(static_cast<std::size_t>(b), len)));
  }
}

bool GoldenGuard::verify_range(std::span<const std::int8_t> bytes,
                               std::int64_t begin, std::int64_t end) {
  RADAR_REQUIRE(built(), "GoldenGuard::build before verify");
  RADAR_REQUIRE(static_cast<std::int64_t>(bytes.size()) == total_bytes_,
                "GoldenGuard byte length changed since build");
  begin = std::clamp<std::int64_t>(begin, 0, total_bytes_);
  end = std::clamp<std::int64_t>(end, begin, total_bytes_);
  if (chaos::fire(chaos::points::kGoldenTornRead)) {
    mismatches_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::size_t r0 = static_cast<std::size_t>(begin / range_bytes_);
  const std::size_t r1 = end == begin
                             ? r0
                             : static_cast<std::size_t>(
                                   (end - 1) / range_bytes_ + 1);
  for (std::size_t r = r0; r < r1 && r < crcs_.size(); ++r) {
    const std::int64_t b = static_cast<std::int64_t>(r) * range_bytes_;
    const auto len = static_cast<std::size_t>(
        std::min(range_bytes_, total_bytes_ - b));
    verified_.fetch_add(1, std::memory_order_relaxed);
    // The CRC touches pages of a file-backed mapping: a package file
    // truncated after mmap raises SIGBUS here. The guard turns that
    // into a mismatch, so the host degrades the tenant instead of the
    // whole daemon dying on one bad file.
    std::uint32_t crc = 0;
    const bool readable = with_sigbus_guard([&] {
      crc = range_crc(bytes.subspan(static_cast<std::size_t>(b), len));
    });
    if (!readable || crc != crcs_[r]) {
      mismatches_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  return true;
}

}  // namespace radar::serve
