// ShardScanner: one tenant's background integrity sweep, sliced into
// byte-range shards and epoch-validated against concurrent writers.
//
// The shard plan mirrors ScanSession's byte-range partitioning (groups
// [b, e) of one layer, sized so each shard covers roughly shard_bytes of
// weights; layers whose scheme lacks a native range kernel stay whole).
// step() scans exactly one shard and advances a cursor, so the daemon's
// scanner thread can round-robin shards across tenants — every tenant
// makes sweep progress even while another tenant's model is large or
// under recovery.
//
// Each scan is bracketed by the arena's EpochGuard (when enabled):
// snapshot epochs -> run the ordinary zero-allocation range kernel on
// the live bytes -> validate. The validated byte range is the *layer's*
// whole range, not the shard's nominal bytes: interleaved layouts
// scatter a group's members across the entire layer, so the layer range
// is the true read set (and is exactly right for contiguous layouts'
// worst case too). On writer overlap the shard is rescanned; after
// max_retries losses the scanner locks writers out for one quiescent
// scan, so a pathological writer can delay but never starve detection.
#pragma once

#include <cstdint>
#include <vector>

#include "core/integrity_scheme.h"

namespace radar::serve {

class ShardScanner {
 public:
  /// Outcome of scanning one shard.
  struct Step {
    std::size_t layer = 0;
    std::int64_t group_begin = 0, group_end = 0;
    bool flagged = false;  ///< at least one group in the shard mismatched
    bool wrapped = false;  ///< this step completed a full-model sweep
  };

  /// Build the shard plan for an attached scheme. `shard_bytes` is the
  /// target weight bytes per shard (the scan granule between which the
  /// scanner yields to other tenants).
  void plan(const core::IntegrityScheme& scheme, std::int64_t shard_bytes);

  bool planned() const { return !plan_.empty(); }
  std::size_t num_shards() const { return plan_.size(); }
  std::size_t cursor() const { return cursor_; }

  /// Scan the next shard of `qm` (which the scheme must be attached to).
  /// Mismatching group ids of the shard land in `flagged_out` (cleared
  /// first). Epoch-validated when the model's arena has a guard; plain
  /// otherwise. Single-threaded: one ShardScanner per scanner thread.
  Step step(const core::IntegrityScheme& scheme,
            const quant::QuantizedModel& qm, int max_retries,
            std::vector<std::int64_t>& flagged_out);

  // ---- stats (written by the scanning thread, read via host stats) ----
  std::uint64_t shards_scanned() const { return shards_scanned_; }
  std::uint64_t sweeps() const { return sweeps_; }
  std::uint64_t epoch_retries() const { return epoch_retries_; }
  std::uint64_t epoch_fallbacks() const { return epoch_fallbacks_; }

 private:
  struct Shard {
    std::size_t layer;
    std::int64_t begin, end;  ///< group range [begin, end)
  };

  /// Run the appropriate scan kernel for one shard (whole-layer fast
  /// path when the shard covers every group).
  void scan_shard(const core::IntegrityScheme& scheme,
                  const quant::QuantizedModel& qm, const Shard& sh,
                  std::vector<std::int64_t>& flagged_out);

  std::vector<Shard> plan_;
  std::size_t cursor_ = 0;
  core::ScanScratch scratch_;
  std::vector<std::uint64_t> epoch_snap_;
  std::uint64_t shards_scanned_ = 0;
  std::uint64_t sweeps_ = 0;
  std::uint64_t epoch_retries_ = 0;
  std::uint64_t epoch_fallbacks_ = 0;
};

}  // namespace radar::serve
