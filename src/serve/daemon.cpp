#include "serve/daemon.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstring>
#include <sstream>

#include "common/error.h"
#include "common/fault_points.h"
#include "common/logging.h"

#if defined(__unix__) || defined(__APPLE__)
#define RADAR_HAVE_UNIX_SOCKETS 1
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define RADAR_HAVE_UNIX_SOCKETS 0
#endif

namespace radar::serve {

namespace {
constexpr std::size_t kInputPoolSize = 64;

// SIGINT/SIGTERM land here; wait() polls the flag. A volatile
// sig_atomic_t store is the only async-signal-safe thing a handler may
// do — no condition variable, no logging.
volatile std::sig_atomic_t g_signal_shutdown = 0;
extern "C" void on_shutdown_signal(int) { g_signal_shutdown = 1; }

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(std::move(tok));
  return out;
}

#if RADAR_HAVE_UNIX_SOCKETS
/// write() that cannot SIGPIPE-kill the process when the peer vanished
/// mid-reply (the fuzz tests do exactly that).
ssize_t safe_write(int fd, const char* p, std::size_t n) {
#ifdef MSG_NOSIGNAL
  return ::send(fd, p, n, MSG_NOSIGNAL);
#else
  return ::write(fd, p, n);
#endif
}
#endif
}  // namespace

Daemon::Daemon(ModelHost& host, std::string socket_path,
               std::int64_t conn_timeout_ms)
    : host_(host),
      socket_path_(std::move(socket_path)),
      conn_timeout_ms_(conn_timeout_ms) {}

Daemon::~Daemon() { stop(); }

std::string Daemon::handle_line(const std::string& line) {
  const auto tok = split_ws(line);
  if (tok.empty()) return "ERR empty command";
  const std::string& cmd = tok[0];
  try {
    if (cmd == "PING") return "PONG";
    if (cmd == "TENANTS") {
      std::string r = "OK";
      for (std::size_t t = 0; t < host_.num_tenants(); ++t)
        r += " " + host_.tenant_name(t);
      return r;
    }
    if (cmd == "INFER") {
      if (tok.size() != 2 && tok.size() != 3)
        return "ERR usage: INFER <tenant> [deadline_ms]";
      const std::size_t t = host_.find_tenant(tok[1]);
      if (t == ModelHost::npos) return "ERR unknown tenant " + tok[1];
      const std::int64_t deadline_ms =
          tok.size() == 3 ? std::stoll(tok[2]) : 0;
      InputPool& pool = *inputs_.at(t);
      const std::size_t i =
          pool.cursor.fetch_add(1, std::memory_order_relaxed) %
          pool.inputs.size();
      const InferenceResult r = host_.infer(t, pool.inputs[i], deadline_ms);
      if (!r.ok) {
        std::string e = "ERR " + r.error;
        if (r.retry_after_ms >= 0)
          e += " RETRY-AFTER=" + std::to_string(r.retry_after_ms);
        return e;
      }
      return "OK " + std::to_string(r.predicted) + " " +
             std::to_string(r.latency_ns);
    }
    if (cmd == "INJECT") {
      const char* usage =
          "ERR usage: INJECT <tenant> <n> <seed> | "
          "INJECT <tenant> rowhammer <rows> <activations> <seed> [double]";
      if (tok.size() < 4) return usage;
      const std::size_t t = host_.find_tenant(tok[1]);
      if (t == ModelHost::npos) return "ERR unknown tenant " + tok[1];
      if (tok[2] == "rowhammer") {
        if (tok.size() != 6 && tok.size() != 7) return usage;
        if (tok.size() == 7 && tok[6] != "double") return usage;
        const std::size_t made = host_.inject_rowhammer(
            t, std::stoi(tok[3]), std::stoll(tok[4]),
            /*double_sided=*/tok.size() == 7,
            static_cast<std::uint64_t>(std::stoull(tok[5])));
        return "OK " + std::to_string(made);
      }
      if (tok.size() != 4) return usage;
      const std::size_t made = host_.inject_faults(
          t, std::stoi(tok[2]),
          static_cast<std::uint64_t>(std::stoull(tok[3])));
      return "OK " + std::to_string(made);
    }
    if (cmd == "SCAN") {
      if (tok.size() != 2 || (tok[1] != "ON" && tok[1] != "OFF"))
        return "ERR usage: SCAN ON|OFF";
      host_.set_scanning(tok[1] == "ON");
      return "OK";
    }
    if (cmd == "CHAOS") {
      const char* usage =
          "ERR usage: CHAOS ARM <point> <prob> <seed> [param] [max_fires]"
          " | CHAOS DISARM <point>|ALL | CHAOS STATS";
      auto& reg = chaos::FaultRegistry::instance();
      if (tok.size() < 2) return usage;
      if (tok.size() == 2 && tok[1] == "STATS")
        return "OK " + reg.to_json();
      if (tok.size() == 3 && tok[1] == "DISARM") {
        if (tok[2] == "ALL") {
          reg.disarm_all();
          return "OK";
        }
        return reg.disarm(tok[2]) ? "OK" : "ERR not armed: " + tok[2];
      }
      if (tok[1] == "ARM") {
        if (tok.size() < 5 || tok.size() > 7) return usage;
        chaos::FaultSpec fs;
        fs.prob = std::stod(tok[3]);
        fs.seed = std::stoull(tok[4]);
        if (tok.size() > 5) fs.param = std::stoll(tok[5]);
        if (tok.size() > 6) fs.max_fires = std::stoll(tok[6]);
        reg.arm(tok[2], fs);
        return "OK";
      }
      return usage;
    }
    if (cmd == "DETECTIONS")
      return "OK " + std::to_string(host_.stats().total_detections());
    if (cmd == "STATS") return "OK " + host_.stats().to_json();
    if (cmd == "SHUTDOWN") {
      shutdown_requested_.store(true, std::memory_order_release);
      wait_cv_.notify_all();
      return "OK";
    }
  } catch (const std::exception& e) {
    return std::string("ERR ") + e.what();
  }
  return "ERR unknown command " + cmd;
}

void Daemon::start() {
#if RADAR_HAVE_UNIX_SOCKETS
  RADAR_REQUIRE(!running(), "daemon already running");
  if (!host_.running()) host_.start();

  // One pool of pre-sliced single-image inputs per tenant: INFER cycles
  // through them instead of materialising a tensor per request.
  inputs_.clear();
  for (std::size_t t = 0; t < host_.num_tenants(); ++t) {
    auto pool = std::make_unique<InputPool>();
    const auto& ds = host_.dataset(t);
    const std::int64_t n = std::min<std::int64_t>(
        static_cast<std::int64_t>(kInputPoolSize), ds.test_size());
    RADAR_REQUIRE(n > 0, "tenant dataset has no test images");
    for (std::int64_t i = 0; i < n; ++i)
      pool->inputs.push_back(ds.test_batch(i, 1).images);
    inputs_.push_back(std::move(pool));
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  RADAR_REQUIRE(socket_path_.size() < sizeof(addr.sun_path),
                "socket path too long: " + socket_path_);
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  RADAR_REQUIRE(listen_fd_ >= 0, "socket() failed");
  ::unlink(socket_path_.c_str());  // stale socket from a previous run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("bind failed on " + socket_path_ + ": " +
                std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(std::string("listen failed: ") + std::strerror(errno));
  }

  shutdown_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  RADAR_LOG(kInfo) << "serve: daemon listening on " << socket_path_;
#else
  throw Error("serve daemon requires unix domain sockets");
#endif
}

void Daemon::stop() {
#if RADAR_HAVE_UNIX_SOCKETS
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  wait_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lk(clients_mu_);
    for (auto& t : client_threads_)
      if (t.joinable()) t.join();
    client_threads_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(socket_path_.c_str());
  RADAR_LOG(kInfo) << "serve: daemon stopped";
#endif
}

void Daemon::wait() {
  std::unique_lock<std::mutex> lk(wait_mu_);
  // Poll with a short timeout: a signal handler cannot notify the
  // condition variable (not async-signal-safe), so signal-driven
  // shutdown is only observable by re-checking the flag.
  while (!wait_cv_.wait_for(lk, std::chrono::milliseconds(50), [this] {
    return shutdown_requested_.load(std::memory_order_acquire) ||
           !running_.load(std::memory_order_acquire);
  })) {
    if (signal_requested()) {
      RADAR_LOG(kInfo) << "serve: shutdown signal received";
      return;
    }
  }
}

void Daemon::install_signal_handlers() {
  std::signal(SIGINT, on_shutdown_signal);
  std::signal(SIGTERM, on_shutdown_signal);
}

bool Daemon::signal_requested() { return g_signal_shutdown != 0; }

void Daemon::accept_loop() {
#if RADAR_HAVE_UNIX_SOCKETS
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (rc <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lk(clients_mu_);
    client_threads_.emplace_back([this, fd] { client_loop(fd); });
  }
#endif
}

void Daemon::client_loop(int fd) {
#if RADAR_HAVE_UNIX_SOCKETS
  std::string buf;
  char chunk[512];
  auto last_activity = std::chrono::steady_clock::now();
  bool open = true;
  while (open && running_.load(std::memory_order_acquire)) {
    // Poll in short slices instead of blocking in read(): an idle or
    // wedged client used to pin this thread forever — now it gets
    // conn_timeout_ms of silence, a log line, and the door.
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) {
      if (conn_timeout_ms_ > 0 &&
          std::chrono::steady_clock::now() - last_activity >
              std::chrono::milliseconds(conn_timeout_ms_)) {
        RADAR_LOG(kWarn) << "serve: closing connection idle for "
                         << conn_timeout_ms_ << "ms";
        break;
      }
      continue;
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;  // peer closed or error
    last_activity = std::chrono::steady_clock::now();
    buf.append(chunk, static_cast<std::size_t>(n));
    if (buf.find('\n') == std::string::npos && buf.size() > kMaxLineBytes) {
      // Unterminated garbage: reply once, then refuse to buffer more.
      RADAR_LOG(kWarn) << "serve: closing connection — command line over "
                       << kMaxLineBytes << " bytes";
      write_reply(fd, "ERR line too long\n");
      break;
    }
    std::size_t nl;
    while (open && (nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (line.size() > kMaxLineBytes) {
        RADAR_LOG(kWarn) << "serve: closing connection — command line over "
                         << kMaxLineBytes << " bytes";
        write_reply(fd, "ERR line too long\n");
        open = false;
        break;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!write_reply(fd, handle_line(line) + "\n")) open = false;
    }
  }
  ::close(fd);
#else
  (void)fd;
#endif
}

bool Daemon::write_reply(int fd, const std::string& reply) {
#if RADAR_HAVE_UNIX_SOCKETS
  // Chaos: the peer (or a middlebox) drops the connection mid-reply —
  // clients must treat a truncated reply as a retryable failure.
  if (chaos::fire(chaos::points::kSocketDisconnect)) {
    ::shutdown(fd, SHUT_RDWR);
    return false;
  }
  // Chaos: trickle the reply one byte per write to exercise every
  // partial-write continuation in clients and in this loop.
  const bool trickle = chaos::fire(chaos::points::kSocketPartialWrite);
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t off = 0;
  while (off < reply.size()) {
    pollfd pfd{fd, POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (rc == 0) {
      if (conn_timeout_ms_ > 0 &&
          std::chrono::steady_clock::now() - t0 >
              std::chrono::milliseconds(conn_timeout_ms_)) {
        RADAR_LOG(kWarn) << "serve: closing connection — reply write "
                         << "stalled for " << conn_timeout_ms_ << "ms";
        return false;
      }
      continue;
    }
    const std::size_t want = trickle ? 1 : reply.size() - off;
    const ssize_t w = safe_write(fd, reply.data() + off, want);
    if (w <= 0) return false;
    off += static_cast<std::size_t>(w);
  }
  return true;
#else
  (void)fd;
  (void)reply;
  return false;
#endif
}

}  // namespace radar::serve
