#include "serve/daemon.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstring>
#include <sstream>

#include "common/error.h"
#include "common/logging.h"

#if defined(__unix__) || defined(__APPLE__)
#define RADAR_HAVE_UNIX_SOCKETS 1
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define RADAR_HAVE_UNIX_SOCKETS 0
#endif

namespace radar::serve {

namespace {
constexpr std::size_t kInputPoolSize = 64;

// SIGINT/SIGTERM land here; wait() polls the flag. A volatile
// sig_atomic_t store is the only async-signal-safe thing a handler may
// do — no condition variable, no logging.
volatile std::sig_atomic_t g_signal_shutdown = 0;
extern "C" void on_shutdown_signal(int) { g_signal_shutdown = 1; }

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(std::move(tok));
  return out;
}
}  // namespace

Daemon::Daemon(ModelHost& host, std::string socket_path)
    : host_(host), socket_path_(std::move(socket_path)) {}

Daemon::~Daemon() { stop(); }

std::string Daemon::handle_line(const std::string& line) {
  const auto tok = split_ws(line);
  if (tok.empty()) return "ERR empty command";
  const std::string& cmd = tok[0];
  try {
    if (cmd == "PING") return "PONG";
    if (cmd == "TENANTS") {
      std::string r = "OK";
      for (std::size_t t = 0; t < host_.num_tenants(); ++t)
        r += " " + host_.tenant_name(t);
      return r;
    }
    if (cmd == "INFER") {
      if (tok.size() != 2) return "ERR usage: INFER <tenant>";
      const std::size_t t = host_.find_tenant(tok[1]);
      if (t == ModelHost::npos) return "ERR unknown tenant " + tok[1];
      InputPool& pool = *inputs_.at(t);
      const std::size_t i =
          pool.cursor.fetch_add(1, std::memory_order_relaxed) %
          pool.inputs.size();
      const InferenceResult r = host_.infer(t, pool.inputs[i]);
      if (!r.ok) return "ERR " + r.error;
      return "OK " + std::to_string(r.predicted) + " " +
             std::to_string(r.latency_ns);
    }
    if (cmd == "INJECT") {
      const char* usage =
          "ERR usage: INJECT <tenant> <n> <seed> | "
          "INJECT <tenant> rowhammer <rows> <activations> <seed> [double]";
      if (tok.size() < 4) return usage;
      const std::size_t t = host_.find_tenant(tok[1]);
      if (t == ModelHost::npos) return "ERR unknown tenant " + tok[1];
      if (tok[2] == "rowhammer") {
        if (tok.size() != 6 && tok.size() != 7) return usage;
        if (tok.size() == 7 && tok[6] != "double") return usage;
        const std::size_t made = host_.inject_rowhammer(
            t, std::stoi(tok[3]), std::stoll(tok[4]),
            /*double_sided=*/tok.size() == 7,
            static_cast<std::uint64_t>(std::stoull(tok[5])));
        return "OK " + std::to_string(made);
      }
      if (tok.size() != 4) return usage;
      const std::size_t made = host_.inject_faults(
          t, std::stoi(tok[2]),
          static_cast<std::uint64_t>(std::stoull(tok[3])));
      return "OK " + std::to_string(made);
    }
    if (cmd == "SCAN") {
      if (tok.size() != 2 || (tok[1] != "ON" && tok[1] != "OFF"))
        return "ERR usage: SCAN ON|OFF";
      host_.set_scanning(tok[1] == "ON");
      return "OK";
    }
    if (cmd == "DETECTIONS")
      return "OK " + std::to_string(host_.stats().total_detections());
    if (cmd == "STATS") return "OK " + host_.stats().to_json();
    if (cmd == "SHUTDOWN") {
      shutdown_requested_.store(true, std::memory_order_release);
      wait_cv_.notify_all();
      return "OK";
    }
  } catch (const std::exception& e) {
    return std::string("ERR ") + e.what();
  }
  return "ERR unknown command " + cmd;
}

void Daemon::start() {
#if RADAR_HAVE_UNIX_SOCKETS
  RADAR_REQUIRE(!running(), "daemon already running");
  if (!host_.running()) host_.start();

  // One pool of pre-sliced single-image inputs per tenant: INFER cycles
  // through them instead of materialising a tensor per request.
  inputs_.clear();
  for (std::size_t t = 0; t < host_.num_tenants(); ++t) {
    auto pool = std::make_unique<InputPool>();
    const auto& ds = host_.dataset(t);
    const std::int64_t n = std::min<std::int64_t>(
        static_cast<std::int64_t>(kInputPoolSize), ds.test_size());
    RADAR_REQUIRE(n > 0, "tenant dataset has no test images");
    for (std::int64_t i = 0; i < n; ++i)
      pool->inputs.push_back(ds.test_batch(i, 1).images);
    inputs_.push_back(std::move(pool));
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  RADAR_REQUIRE(socket_path_.size() < sizeof(addr.sun_path),
                "socket path too long: " + socket_path_);
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  RADAR_REQUIRE(listen_fd_ >= 0, "socket() failed");
  ::unlink(socket_path_.c_str());  // stale socket from a previous run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("bind failed on " + socket_path_ + ": " +
                std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(std::string("listen failed: ") + std::strerror(errno));
  }

  shutdown_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  RADAR_LOG(kInfo) << "serve: daemon listening on " << socket_path_;
#else
  throw Error("serve daemon requires unix domain sockets");
#endif
}

void Daemon::stop() {
#if RADAR_HAVE_UNIX_SOCKETS
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  wait_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lk(clients_mu_);
    for (auto& t : client_threads_)
      if (t.joinable()) t.join();
    client_threads_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(socket_path_.c_str());
  RADAR_LOG(kInfo) << "serve: daemon stopped";
#endif
}

void Daemon::wait() {
  std::unique_lock<std::mutex> lk(wait_mu_);
  // Poll with a short timeout: a signal handler cannot notify the
  // condition variable (not async-signal-safe), so signal-driven
  // shutdown is only observable by re-checking the flag.
  while (!wait_cv_.wait_for(lk, std::chrono::milliseconds(50), [this] {
    return shutdown_requested_.load(std::memory_order_acquire) ||
           !running_.load(std::memory_order_acquire);
  })) {
    if (signal_requested()) {
      RADAR_LOG(kInfo) << "serve: shutdown signal received";
      return;
    }
  }
}

void Daemon::install_signal_handlers() {
  std::signal(SIGINT, on_shutdown_signal);
  std::signal(SIGTERM, on_shutdown_signal);
}

bool Daemon::signal_requested() { return g_signal_shutdown != 0; }

void Daemon::accept_loop() {
#if RADAR_HAVE_UNIX_SOCKETS
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (rc <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lk(clients_mu_);
    client_threads_.emplace_back([this, fd] { client_loop(fd); });
  }
#endif
}

void Daemon::client_loop(int fd) {
#if RADAR_HAVE_UNIX_SOCKETS
  std::string buf;
  char chunk[512];
  while (running_.load(std::memory_order_acquire)) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;  // peer closed or error
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const std::string reply = handle_line(line) + "\n";
      std::size_t off = 0;
      while (off < reply.size()) {
        const ssize_t w =
            ::write(fd, reply.data() + off, reply.size() - off);
        if (w <= 0) break;
        off += static_cast<std::size_t>(w);
      }
      if (off < reply.size()) break;
    }
  }
  ::close(fd);
#else
  (void)fd;
#endif
}

}  // namespace radar::serve
