// LatencyHistogram: lock-free log-bucketed latency recording for the
// serving hot path (HDR-histogram style, 8 sub-buckets per power of two,
// <= 12.5% relative quantile error — plenty for p50/p99/p999 tables).
//
// record() is two relaxed atomic adds plus one relaxed max-CAS, safe from
// any number of threads; quantiles are computed from a Snapshot so the
// read side never blocks writers. Each inference worker owns one
// histogram per tenant and stats() merges them, so the steady-state
// request loop shares no cache lines across workers.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

namespace radar::serve {

class LatencyHistogram {
 public:
  static constexpr int kSubBits = 3;  ///< 8 sub-buckets per octave
  static constexpr int kSub = 1 << kSubBits;
  /// Identity region [0, 8) + (63 - kSubBits) octaves of kSub buckets.
  static constexpr int kBuckets = kSub + (63 - kSubBits) * kSub;

  /// Bucket index of a non-negative value (values cap at the top bucket).
  static int bucket_of(std::int64_t v) {
    if (v < kSub) return static_cast<int>(v);
    const int msb = 63 - std::countl_zero(static_cast<std::uint64_t>(v));
    const int idx = (msb - kSubBits) * kSub +
                    static_cast<int>((v >> (msb - kSubBits)) & (kSub - 1)) +
                    kSub;
    return idx < kBuckets ? idx : kBuckets - 1;
  }

  /// Representative value of a bucket (midpoint of its covered range).
  static std::int64_t bucket_mid(int idx) {
    if (idx < kSub) return idx;
    const int octave = (idx - kSub) / kSub + kSubBits;
    const std::int64_t sub = (idx - kSub) % kSub;
    const std::int64_t lo =
        (std::int64_t{1} << octave) + (sub << (octave - kSubBits));
    return lo + (std::int64_t{1} << (octave - kSubBits)) / 2;
  }

  void record(std::int64_t v) {
    if (v < 0) v = 0;
    counts_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(static_cast<std::uint64_t>(v),
                   std::memory_order_relaxed);
    std::int64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }

  void reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  /// A mergeable point-in-time copy; all quantile math lives here.
  struct Snapshot {
    std::vector<std::uint64_t> counts;  ///< kBuckets entries (empty = 0)
    std::uint64_t total = 0;
    std::uint64_t sum = 0;
    std::int64_t max = 0;

    void merge(const Snapshot& other) {
      if (counts.empty()) counts.assign(kBuckets, 0);
      for (int i = 0; i < kBuckets; ++i)
        counts[static_cast<std::size_t>(i)] +=
            other.counts.empty()
                ? 0
                : other.counts[static_cast<std::size_t>(i)];
      total += other.total;
      sum += other.sum;
      if (other.max > max) max = other.max;
    }

    /// Value at quantile q in [0, 1] (bucket midpoint; exact max for the
    /// top sample). 0 when empty.
    std::int64_t quantile(double q) const {
      if (total == 0) return 0;
      const double target = q * static_cast<double>(total);
      std::uint64_t seen = 0;
      for (int i = 0; i < kBuckets; ++i) {
        seen += counts[static_cast<std::size_t>(i)];
        if (static_cast<double>(seen) >= target)
          return i + 1 == kBuckets || seen == total ? max : bucket_mid(i);
      }
      return max;
    }

    double mean() const {
      return total == 0
                 ? 0.0
                 : static_cast<double>(sum) / static_cast<double>(total);
    }
  };

  Snapshot snapshot() const {
    Snapshot s;
    s.counts.resize(kBuckets);
    for (int i = 0; i < kBuckets; ++i) {
      const std::uint64_t c =
          counts_[static_cast<std::size_t>(i)].load(
              std::memory_order_relaxed);
      s.counts[static_cast<std::size_t>(i)] = c;
      s.total += c;
    }
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::vector<std::atomic<std::uint64_t>> counts_{
      std::vector<std::atomic<std::uint64_t>>(kBuckets)};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::int64_t> max_{0};
};

}  // namespace radar::serve
