#include "serve/scanner.h"

#include <algorithm>
#include <thread>

#include "quant/epoch_guard.h"

namespace radar::serve {

void ShardScanner::plan(const core::IntegrityScheme& scheme,
                        std::int64_t shard_bytes) {
  RADAR_REQUIRE(scheme.attached(), "shard plan before attach");
  RADAR_REQUIRE(shard_bytes > 0, "scan shard size must be positive");
  plan_.clear();
  cursor_ = 0;
  // Same partitioning rule as ScanSession: shards cover contiguous group
  // ranges proportional to layer bytes; schemes whose range scan is a
  // full-layer fallback keep one shard per layer (splitting would rescan
  // the whole layer per shard).
  const bool splittable = scheme.supports_range_scan();
  for (std::size_t li = 0; li < scheme.num_layers(); ++li) {
    const core::GroupLayout& layout = scheme.layout(li);
    const std::int64_t nw = layout.num_weights();
    const std::int64_t ng = layout.num_groups();
    const std::int64_t chunks =
        splittable
            ? std::max<std::int64_t>(
                  1, std::min(ng, (nw + shard_bytes - 1) / shard_bytes))
            : 1;
    const std::int64_t per = (ng + chunks - 1) / chunks;
    for (std::int64_t b = 0; b < ng; b += per)
      plan_.push_back({li, b, std::min(b + per, ng)});
  }
}

void ShardScanner::scan_shard(const core::IntegrityScheme& scheme,
                              const quant::QuantizedModel& qm,
                              const Shard& sh,
                              std::vector<std::int64_t>& flagged_out) {
  if (sh.begin == 0 && sh.end == scheme.layout(sh.layer).num_groups())
    scheme.scan_layer_into(qm, sh.layer, flagged_out, scratch_);
  else
    scheme.scan_layer_range_into(qm, sh.layer, sh.begin, sh.end,
                                 flagged_out, scratch_);
}

ShardScanner::Step ShardScanner::step(
    const core::IntegrityScheme& scheme, const quant::QuantizedModel& qm,
    int max_retries, std::vector<std::int64_t>& flagged_out) {
  RADAR_REQUIRE(planned(), "scanner step before plan");
  const Shard& sh = plan_[cursor_];
  Step out;
  out.layer = sh.layer;
  out.group_begin = sh.begin;
  out.group_end = sh.end;

  quant::EpochGuard* guard = qm.epoch_guard();
  if (guard == nullptr) {
    scan_shard(scheme, qm, sh, flagged_out);
  } else {
    const auto [b0, b1] = qm.layer_byte_range(sh.layer);
    bool done = false;
    for (int attempt = 0; attempt < max_retries && !done; ++attempt) {
      if (!guard->read_begin(b0, b1, epoch_snap_)) {
        ++epoch_retries_;
        std::this_thread::yield();
        continue;
      }
      scan_shard(scheme, qm, sh, flagged_out);
      if (guard->read_validate(b0, b1, epoch_snap_)) {
        done = true;
      } else {
        ++epoch_retries_;  // writer overlapped: verdict discarded
      }
    }
    if (!done) {
      // Quiescent fallback: lock writers out for one bounded scan so a
      // hot writer can delay detection, never defeat it.
      ++epoch_fallbacks_;
      auto lock = guard->lock_writers();
      scan_shard(scheme, qm, sh, flagged_out);
    }
  }

  out.flagged = !flagged_out.empty();
  ++shards_scanned_;
  if (++cursor_ == plan_.size()) {
    cursor_ = 0;
    ++sweeps_;
    out.wrapped = true;
  }
  return out;
}

}  // namespace radar::serve
