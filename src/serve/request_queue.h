// BoundedQueue: the MPMC request queue between the daemon's front ends
// (socket connections, in-process loadgen threads) and the inference
// worker pool.
//
// Deliberately a mutex + two condition variables rather than a lock-free
// ring: the payload is one inference request (~hundreds of microseconds
// of downstream work), so queue overhead is noise, and the blocking
// semantics are exactly what the serving loop needs — producers can
// either wait for capacity (closed-loop clients) or bounce immediately
// (open-loop load shedding via try_push), and close() drains cleanly:
// pending items are still delivered, then every pop returns false.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

namespace radar::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocking push: waits for capacity. False when the queue was closed
  /// (the item is dropped).
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_space_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    cv_item_.notify_one();
    return true;
  }

  /// Non-blocking push for open-loop producers: false (item dropped)
  /// when full or closed; full-drops are counted in rejected().
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      if (items_.size() >= capacity_) {
        ++rejected_;
        return false;
      }
      items_.push_back(std::move(item));
    }
    cv_item_.notify_one();
    return true;
  }

  /// Deadline-bounded push: waits for capacity at most `timeout`. False
  /// when the queue closed (item dropped) or the wait timed out
  /// (counted in timed_out()) — the producer-side half of request
  /// deadline propagation: a client with 5 ms left should not sit in
  /// push() for 50.
  template <typename Rep, typename Period>
  bool try_push_for(T item, std::chrono::duration<Rep, Period> timeout) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      const bool got = cv_space_.wait_for(lock, timeout, [this] {
        return closed_ || items_.size() < capacity_;
      });
      if (closed_) return false;
      if (!got) {
        ++timed_out_;
        return false;
      }
      items_.push_back(std::move(item));
    }
    cv_item_.notify_one();
    return true;
  }

  /// Blocking pop: waits for an item. False only when the queue is
  /// closed AND drained — the consumer's termination condition.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_item_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    cv_space_.notify_one();
    return true;
  }

  /// Stop accepting items; wakes every blocked producer and consumer.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_item_.notify_all();
    cv_space_.notify_all();
  }

  std::size_t capacity() const { return capacity_; }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Open-loop pushes bounced for lack of capacity.
  std::uint64_t rejected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_;
  }

  /// Deadline-bounded pushes that gave up waiting for capacity.
  std::uint64_t timed_out() const {
    std::lock_guard<std::mutex> lock(mu_);
    return timed_out_;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_item_, cv_space_;
  std::deque<T> items_;
  std::uint64_t rejected_ = 0;
  std::uint64_t timed_out_ = 0;
  bool closed_ = false;
};

}  // namespace radar::serve
