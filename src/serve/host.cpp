#include "serve/host.h"

#include <algorithm>
#include <sstream>

#include "attack/rowhammer.h"
#include "common/fault_points.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sigbus_guard.h"
#include "core/package.h"
#include "core/scan_session.h"
#include "quant/epoch_guard.h"

namespace radar::serve {

namespace {
constexpr std::int64_t kCalibImages = 64;
constexpr auto kScannerIdle = std::chrono::microseconds(200);

/// Cooperative chaos stall: sleeps `ms` in small slices, bailing as soon
/// as `abort()` turns true — the wedge is real enough for a watchdog to
/// see, but teardown joins stay bounded.
template <typename AbortFn>
void chaos_stall_ms(std::int64_t ms, AbortFn&& abort) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto dur = std::chrono::milliseconds(ms);
  while (!abort() && std::chrono::steady_clock::now() - t0 < dur)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
}  // namespace

ModelHost::ModelHost(ServeOptions opts) : opts_(opts) {
  RADAR_REQUIRE(opts_.workers > 0, "serve host needs at least one worker");
  scanning_ = opts_.scan;
  // $RADAR_CHAOS arming happens at host construction so every entry
  // point (daemon, tests, in-process loadgen) sees the same points.
  chaos::FaultRegistry::instance().arm_from_env();
}

ModelHost::~ModelHost() { stop(); }

std::size_t ModelHost::add_tenant(const TenantConfig& cfg) {
  RADAR_REQUIRE(!running_, "add_tenant while serving");
  RADAR_REQUIRE(!cfg.name.empty(), "tenant needs a name");
  RADAR_REQUIRE(find_tenant(cfg.name) == npos,
                "duplicate tenant name: " + cfg.name);

  auto t = std::make_unique<Tenant>();
  t->cfg = cfg;
  // The reference model only supplies layer structure — the package
  // overwrites every weight — so skip training and clean-accuracy eval.
  t->bundle = exp::make_bundle(cfg.model_id, /*train=*/false,
                               /*eval_clean=*/false);

  core::PackageLoadOptions load_opts;
  load_opts.threads = 1;
  load_opts.mmap_golden = cfg.mmap_golden;
  const auto report = core::load_package(cfg.package_path, *t->bundle.qmodel,
                                         t->scheme, load_opts);
  RADAR_REQUIRE(report.verified(),
                "tenant '" + cfg.name + "': package " + cfg.package_path +
                    " failed verification — refusing to serve it");
  t->golden_mmapped = report.golden_mmapped;

  // Per-shard seqlock epochs: from here on every arena mutation must go
  // through a WriterSection (inject_faults and scanner recovery do).
  t->bundle.qmodel->enable_epoch_guard(opts_.epoch_shard_bytes);

  // One engine per tenant, shared across workers: the op program is
  // immutable after this calibration and all working memory comes from
  // per-worker scratch. No engine-internal pool — parallelism comes from
  // concurrent requests, keeping per-request latency flat under load.
  t->engine = std::make_unique<qnn::InferenceEngine>(
      *t->bundle.qmodel, qnn::EngineKind::kBatched, nullptr);
  const std::int64_t calib =
      std::min<std::int64_t>(kCalibImages, t->bundle.dataset->test_size());
  RADAR_REQUIRE(calib > 0, "tenant dataset has no calibration images");
  t->engine->calibrate(t->bundle.dataset->test_batch(0, calib).images);

  core::ScanScheduler::Config scfg;
  scfg.budget_us = opts_.scan_budget_us;
  scfg.budget_bytes = opts_.scan_budget_bytes;
  scfg.chunk_bytes = opts_.scan_shard_bytes;
  scfg.max_retries = opts_.epoch_max_retries;
  t->scheduler.plan(*t->scheme, scfg);
  // Coverage age is measured from load until the first sweep completes.
  t->sweep_end_ns.store(now_ns(), std::memory_order_relaxed);

  // Degraded-golden machinery (mmap path only: the owned clean copy is
  // process-private and cannot rot under us). The sidecar CRCs the
  // *verified* golden bytes; the snapshot is the clean fallback recovery
  // switches to when a later read of the mapping disagrees.
  if (t->golden_mmapped) {
    t->golden_guard.build(t->scheme->clean_arena_bytes(),
                          opts_.golden_range_bytes);
    t->fallback_snapshot = std::make_shared<quant::ArenaSnapshot>(
        t->bundle.qmodel->snapshot());
  }

  RADAR_LOG(kInfo) << "serve: tenant '" << cfg.name << "' ready — "
                   << t->bundle.qmodel->total_weights() << " weights, "
                   << t->scheme->id() << " scheme, "
                   << t->scheduler.num_chunks() << " scan chunks, golden "
                   << (t->golden_mmapped ? "mmap" : "owned");

  tenants_.push_back(std::move(t));
  return tenants_.size() - 1;
}

const std::string& ModelHost::tenant_name(std::size_t t) const {
  return tenants_.at(t)->cfg.name;
}

std::size_t ModelHost::find_tenant(const std::string& name) const {
  for (std::size_t i = 0; i < tenants_.size(); ++i)
    if (tenants_[i]->cfg.name == name) return i;
  return npos;
}

const data::SyntheticDataset& ModelHost::dataset(std::size_t t) const {
  return *tenants_.at(t)->bundle.dataset;
}

void ModelHost::start() {
  RADAR_REQUIRE(!running_, "serve host already running");
  RADAR_REQUIRE(!tenants_.empty(), "serve host has no tenants");
  queue_ = std::make_unique<BoundedQueue<Request>>(opts_.queue_capacity);
  stop_scanner_ = false;
  scanner_abort_ = false;
  stop_watchdog_ = false;
  scanner_heartbeat_ns_ = now_ns();
  workers_.clear();
  for (std::size_t wi = 0; wi < opts_.workers; ++wi)
    workers_.push_back(std::make_unique<Worker>(tenants_.size()));
  running_ = true;
  for (std::size_t wi = 0; wi < opts_.workers; ++wi)
    workers_[wi]->thread = std::thread([this, wi] { worker_loop(wi); });
  {
    std::lock_guard<std::mutex> lock(scanner_mu_);
    scanner_thread_ = std::thread([this] { scanner_loop(); });
  }
  if (opts_.watchdog)
    watchdog_thread_ = std::thread([this] { watchdog_loop(); });
  RADAR_LOG(kInfo) << "serve: started — " << tenants_.size()
                   << " tenant(s), " << opts_.workers
                   << " worker(s), scanning "
                   << (scanning_ ? "on" : "off") << ", watchdog "
                   << (opts_.watchdog ? "on" : "off");
}

void ModelHost::stop() {
  if (!running_) return;
  queue_->close();
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
  // Watchdog before scanner: once it is gone nobody else touches
  // scanner_thread_, so the final join below cannot race a restart.
  stop_watchdog_ = true;
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  stop_scanner_ = true;
  scanner_abort_ = true;  // bail out of any chaos stall immediately
  {
    std::lock_guard<std::mutex> lock(scanner_mu_);
    if (scanner_thread_.joinable()) scanner_thread_.join();
  }
  running_ = false;
  RADAR_LOG(kInfo) << "serve: stopped";
}

InferenceResult ModelHost::infer(std::size_t tenant, const nn::Tensor& input,
                                 std::int64_t deadline_ms) {
  RADAR_REQUIRE(running_, "infer on a stopped host");
  RADAR_REQUIRE(tenant < tenants_.size(), "unknown tenant index");
  if (deadline_ms <= 0) deadline_ms = opts_.default_deadline_ms;
  Request req;
  req.tenant = tenant;
  req.input = &input;
  req.t_submit = std::chrono::steady_clock::now();
  if (deadline_ms > 0) {
    req.deadline = req.t_submit + std::chrono::milliseconds(deadline_ms);
    req.has_deadline = true;
  }
  // A producer-side wedge (slow disk on the request path, a debugger,
  // scheduler trouble) — the deadline bounds its blast radius.
  if (chaos::fire(chaos::points::kQueueStall))
    chaos_stall_ms(chaos::param(chaos::points::kQueueStall, 50),
                   [this] { return queue_->closed(); });
  std::future<InferenceResult> fut = req.promise.get_future();
  const bool has_deadline = req.has_deadline;
  const auto deadline = req.deadline;
  const bool pushed =
      has_deadline
          ? queue_->try_push_for(std::move(req),
                                 deadline - std::chrono::steady_clock::now())
          : queue_->push(std::move(req));
  if (!pushed) {
    InferenceResult r;
    if (queue_->closed()) {
      r.error = "queue closed";
    } else {
      r.error = "queue full (deadline)";
      r.retry_after_ms = opts_.shed_retry_ms;
    }
    return r;
  }
  return fut.get();
}

bool ModelHost::try_infer_async(std::size_t tenant, const nn::Tensor& input,
                                std::future<InferenceResult>& out,
                                std::int64_t deadline_ms) {
  RADAR_REQUIRE(running_, "infer on a stopped host");
  RADAR_REQUIRE(tenant < tenants_.size(), "unknown tenant index");
  if (deadline_ms <= 0) deadline_ms = opts_.default_deadline_ms;
  Request req;
  req.tenant = tenant;
  req.input = &input;
  req.t_submit = std::chrono::steady_clock::now();
  if (deadline_ms > 0) {
    req.deadline = req.t_submit + std::chrono::milliseconds(deadline_ms);
    req.has_deadline = true;
  }
  out = req.promise.get_future();
  return queue_->try_push(std::move(req));
}

void ModelHost::worker_loop(std::size_t wi) {
  Worker& w = *workers_[wi];
  Request req;
  while (queue_->pop(req)) {
    Tenant& t = *tenants_[req.tenant];
    // Park the promise where the watchdog can steal it, then raise the
    // busy heartbeat. Serial numbers disambiguate: a slow request the
    // watchdog already failed must not complete a later one's promise.
    std::uint64_t serial = 0;
    {
      std::lock_guard<std::mutex> lock(w.inflight.mu);
      serial = ++w.inflight.serial;
      w.inflight.tenant = req.tenant;
      w.inflight.promise = std::move(req.promise);
      w.inflight.active = true;
    }
    w.busy_since_ns.store(now_ns(), std::memory_order_release);

    InferenceResult r;
    if (req.has_deadline && std::chrono::steady_clock::now() > req.deadline) {
      // Expired in the queue: fail fast instead of burning a forward
      // pass on an answer the client already gave up on. Distinct error
      // and counter (not `errors` — the model did nothing wrong).
      r.error = "deadline exceeded";
      t.deadline_expired.fetch_add(1, std::memory_order_relaxed);
    } else if (t.quarantined.load(std::memory_order_acquire)) {
      // Shed with a distinct error (not counted under `errors`): the
      // tenant is being re-verified; its traffic must not poison replies
      // or hold a worker while other tenants' requests wait.
      r.error = "tenant quarantined";
      const std::int64_t rem_ms =
          (t.readmit_at_ns.load(std::memory_order_relaxed) - now_ns()) /
          1000000;
      r.retry_after_ms = std::max(rem_ms, opts_.shed_retry_ms);
      t.shed_quarantined.fetch_add(1, std::memory_order_relaxed);
    } else {
      try {
        if (chaos::fire(chaos::points::kWorkerException))
          throw Error("chaos: injected worker exception");
        if (chaos::fire(chaos::points::kWorkerStall))
          chaos_stall_ms(chaos::param(chaos::points::kWorkerStall,
                                      3 * opts_.worker_stall_ms),
                         [this] { return queue_->closed(); });
        if (chaos::fire(chaos::points::kInferSlow))
          std::this_thread::sleep_for(std::chrono::milliseconds(
              chaos::param(chaos::points::kInferSlow, 50)));
        t.engine->forward_into(*req.input, w.scratch, w.logits);
        const std::int64_t classes = t.engine->num_classes();
        const float* row = w.logits.data();
        int best = 0;
        for (std::int64_t c = 1; c < classes; ++c)
          if (row[c] > row[best]) best = static_cast<int>(c);
        r.predicted = best;
        r.ok = true;
      } catch (const std::exception& e) {
        r.error = e.what();
        t.errors.fetch_add(1, std::memory_order_relaxed);
      }
    }

    w.busy_since_ns.store(-1, std::memory_order_release);
    // Reclaim the parked promise — unless the watchdog already failed
    // this request, in which case the late result is dropped (the
    // client got "worker wedged" long ago).
    std::promise<InferenceResult> promise;
    bool owned = false;
    {
      std::lock_guard<std::mutex> lock(w.inflight.mu);
      if (w.inflight.active && w.inflight.serial == serial) {
        promise = std::move(w.inflight.promise);
        w.inflight.active = false;
        owned = true;
      }
    }
    w.wedged.store(false, std::memory_order_relaxed);
    if (!owned) continue;
    r.latency_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - req.t_submit)
                       .count();
    w.hist[req.tenant].record(r.latency_ns);
    t.requests.fetch_add(1, std::memory_order_relaxed);
    promise.set_value(std::move(r));
  }
}

void ModelHost::watchdog_loop() {
  // Watchdog-private: the serial each worker was last flagged at, so a
  // wedged request is failed exactly once.
  std::vector<std::uint64_t> flagged(workers_.size(), 0);
  const auto interval = std::chrono::milliseconds(opts_.watchdog_interval_ms);
  while (!stop_watchdog_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(interval);
    if (stop_watchdog_.load(std::memory_order_relaxed)) break;
    const std::int64_t now = now_ns();

    // Scanner heartbeat: stale means stalled (chaos, scheduler, a bug)
    // or dead (crash — the loop's catch already logged it). Either way
    // tear it down via the cooperative abort flag and respawn. Sweep
    // position is preserved: each tenant's ScanScheduler (cursor, dirty
    // queue, sweep accumulation) lives in the Tenant, not the thread.
    const std::int64_t hb =
        scanner_heartbeat_ns_.load(std::memory_order_acquire);
    if (hb >= 0 && now - hb > opts_.scanner_stall_ms * 1000000) {
      scanner_abort_.store(true, std::memory_order_release);
      {
        std::lock_guard<std::mutex> lock(scanner_mu_);
        if (scanner_thread_.joinable()) scanner_thread_.join();
        scanner_abort_.store(false, std::memory_order_release);
        scanner_heartbeat_ns_.store(now_ns(), std::memory_order_release);
        scanner_thread_ = std::thread([this] { scanner_loop(); });
      }
      scanner_restarts_.fetch_add(1, std::memory_order_relaxed);
      RADAR_LOG(kWarn)
          << "serve: watchdog restarted stalled scanner (heartbeat "
          << (now - hb) / 1000000 << "ms stale)";
      continue;
    }

    // Worker heartbeats: one request holding a worker past the stall
    // bound gets failed out from under it — the client unblocks, the
    // worker is flagged wedged until it completes something again.
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      Worker& w = *workers_[i];
      const std::int64_t busy =
          w.busy_since_ns.load(std::memory_order_acquire);
      if (busy < 0 || now - busy <= opts_.worker_stall_ms * 1000000)
        continue;
      std::promise<InferenceResult> promise;
      std::size_t tenant = 0;
      bool stole = false;
      {
        std::lock_guard<std::mutex> lock(w.inflight.mu);
        if (w.inflight.active && w.inflight.serial != flagged[i]) {
          flagged[i] = w.inflight.serial;
          tenant = w.inflight.tenant;
          promise = std::move(w.inflight.promise);
          w.inflight.active = false;
          stole = true;
        }
      }
      if (!stole) continue;
      w.wedged.store(true, std::memory_order_relaxed);
      worker_flags_.fetch_add(1, std::memory_order_relaxed);
      Tenant& t = *tenants_[tenant];
      t.requests.fetch_add(1, std::memory_order_relaxed);
      t.errors.fetch_add(1, std::memory_order_relaxed);
      RADAR_LOG(kError) << "serve: watchdog failed wedged request on worker "
                        << i << " (tenant '" << t.cfg.name << "', busy "
                        << (now - busy) / 1000000 << "ms)";
      InferenceResult r;
      r.error = "worker wedged (watchdog)";
      promise.set_value(std::move(r));
    }
  }
}

core::ScanScheduler::Slice ModelHost::scan_step(Tenant& t) {
  quant::QuantizedModel& qm = *t.bundle.qmodel;
  const core::ScanScheduler::Slice slice = t.scheduler.run_slice(qm);
  t.scan_active_ns += slice.elapsed_ns;

  // Publish the scheduler's private counters for stats().
  t.shards_scanned.store(t.scheduler.chunks_scanned(),
                         std::memory_order_relaxed);
  t.sweeps.store(t.scheduler.sweeps(), std::memory_order_relaxed);
  t.epoch_retries.store(t.scheduler.epoch_retries(),
                        std::memory_order_relaxed);
  t.epoch_fallbacks.store(t.scheduler.epoch_fallbacks(),
                          std::memory_order_relaxed);
  t.scan_bytes.store(t.scheduler.bytes_scanned(),
                     std::memory_order_relaxed);
  t.scan_ns.store(t.scan_active_ns, std::memory_order_relaxed);
  t.scan_cursor.store(t.scheduler.cursor(), std::memory_order_relaxed);
  t.dirty_pending.store(t.scheduler.dirty_pending(),
                        std::memory_order_relaxed);
  if (slice.wrapped) {
    t.sweep_end_ns.store(now_ns(), std::memory_order_relaxed);
    t.sweep_ms.store(t.scheduler.last_sweep_ns() / 1000000,
                     std::memory_order_relaxed);
    t.coverage_alarm_armed = false;  // deadline met: re-arm the alarm
  }

  if (!slice.flagged) return slice;

  // Detection: account time-to-detect against the last injection, then
  // repair the flagged groups in place under a writer section — traffic
  // keeps flowing, overlapping optimistic scans simply retry.
  const std::int64_t inject_ns =
      t.pending_inject_ns.exchange(-1, std::memory_order_acq_rel);
  if (inject_ns >= 0)
    t.last_ttd_ns.store(now_ns() - inject_ns, std::memory_order_relaxed);

  // A slice can flag groups across several layers (dirty rescans + sweep
  // chunks); fold them into one per-layer report, deduplicated.
  t.recover_report.flagged.resize(qm.num_layers());
  for (auto& f : t.recover_report.flagged) f.clear();
  for (const auto& [layer, group] : t.scheduler.slice_flags())
    t.recover_report.flagged[layer].push_back(group);
  std::size_t flagged_groups = 0;
  for (std::size_t li = 0; li < qm.num_layers(); ++li) {
    auto& f = t.recover_report.flagged[li];
    if (f.empty()) continue;
    std::sort(f.begin(), f.end());
    f.erase(std::unique(f.begin(), f.end()), f.end());
    flagged_groups += f.size();
    // Before kReloadClean copies from the mmap'd golden, prove those
    // bytes still match the load-time CRC sidecar — a rotted/torn
    // mapping must degrade to the snapshot fallback, never be installed
    // as "clean".
    if (opts_.recovery == core::RecoveryPolicy::kReloadClean) {
      const auto [b0, b1] = qm.layer_byte_range(li);
      ensure_golden(t, b0, b1);
    }
  }
  bool recovered = false;
  try {
    if (chaos::fire(chaos::points::kRecoveryFail))
      throw Error("chaos: injected recovery failure");
    quant::EpochGuard::WriterSection ws(*qm.epoch_guard(), 0,
                                        qm.arena().size_bytes());
    t.scheme->recover(qm, t.recover_report, opts_.recovery);
    recovered = true;
  } catch (const std::exception& e) {
    // A failed repair is not fatal: the corruption stays flagged, the
    // next sweep re-detects it and retries. Count it so STATS shows the
    // scanner limping before anything worse happens.
    t.recover_failures.fetch_add(1, std::memory_order_relaxed);
    RADAR_LOG(kError) << "serve: tenant '" << t.cfg.name
                      << "' recovery failed (will retry next sweep): "
                      << e.what();
  }
  if (recovered) {
    t.groups_recovered.fetch_add(flagged_groups,
                                 std::memory_order_relaxed);
    // Feed the repair back as priority work: the next slice re-verifies
    // the just-rewritten groups before any sweep chunk, so a recovery
    // that failed to take (or raced another writer) is caught in one
    // slice, not one sweep.
    for (std::size_t li = 0; li < qm.num_layers(); ++li)
      for (const std::int64_t g : t.recover_report.flagged[li])
        t.scheduler.push_dirty(li, g);
    t.dirty_pending.store(t.scheduler.dirty_pending(),
                          std::memory_order_relaxed);
  }
  // Published last: observers polling `detections` can rely on the
  // repair already being accounted in `groups_recovered`/`last_ttd_ns`.
  t.detections.fetch_add(1, std::memory_order_release);
  RADAR_LOG(kInfo) << "serve: tenant '" << t.cfg.name << "' slice flagged "
                   << flagged_groups << " group(s) ("
                   << slice.dirty_groups << " dirty, " << slice.chunks
                   << " chunk(s) swept), "
                   << (recovered ? "recovered" : "recovery FAILED")
                   << (inject_ns >= 0 ? " (ttd recorded)" : "");
  note_detection(t);
  return slice;
}

void ModelHost::check_coverage(Tenant& t) {
  // Coverage guarantee: a sweep older than the period is a QoS violation
  // (starved budget, an overloaded box, a wedged scheme). One alarm per
  // missed period, re-armed by the next completed sweep.
  if (opts_.coverage_period_ms <= 0 || t.coverage_alarm_armed ||
      t.scheduler.coverage_age_ns() <= opts_.coverage_period_ms * 1000000)
    return;
  t.coverage_alarm_armed = true;
  t.coverage_alarms.fetch_add(1, std::memory_order_relaxed);
  RADAR_LOG(kWarn) << "serve: tenant '" << t.cfg.name
                   << "' coverage deadline missed — sweep age "
                   << t.scheduler.coverage_age_ns() / 1000000
                   << "ms exceeds " << opts_.coverage_period_ms
                   << "ms (budget too small for the model?)";
}

void ModelHost::ensure_golden(Tenant& t, std::int64_t b0, std::int64_t b1) {
  if (!t.golden_guard.built() ||
      t.degraded.load(std::memory_order_relaxed))
    return;
  const std::span<const std::int8_t> golden = t.scheme->clean_arena_bytes();
  if (golden.empty()) return;
  if (t.golden_guard.verify_range(golden, b0, b1)) return;
  degrade_tenant(t);
}

void ModelHost::degrade_tenant(Tenant& t) {
  t.degraded.store(true, std::memory_order_release);
  t.degrades.fetch_add(1, std::memory_order_relaxed);
  // Swap recovery's clean source to the in-memory snapshot captured at
  // load. Only the scanner thread reads the clean source (recovery,
  // quarantine scrub), so the swap needs no extra synchronization.
  t.scheme->set_clean_source(t.fallback_snapshot,
                             t.fallback_snapshot->bytes());
  t.reopen_backoff_ms = opts_.reopen_backoff_ms;
  t.reopen_at_ns = now_ns() + t.reopen_backoff_ms * 1000000;
  RADAR_LOG(kError) << "serve: tenant '" << t.cfg.name
                    << "' golden mapping failed CRC verification — "
                    << "degraded to snapshot fallback, package re-open in "
                    << t.reopen_backoff_ms << "ms";
}

void ModelHost::maybe_heal(Tenant& t) {
  if (!t.degraded.load(std::memory_order_relaxed)) return;
  if (now_ns() < t.reopen_at_ns) return;
  core::MappedArena mapped = core::map_package_arena(t.cfg.package_path);
  const bool ok =
      mapped.ok() &&
      mapped.bytes.size() == t.fallback_snapshot->bytes().size() &&
      t.golden_guard.verify_all(mapped.bytes);
  if (ok) {
    t.scheme->set_clean_source(std::move(mapped.holder), mapped.bytes);
    t.degraded.store(false, std::memory_order_release);
    t.heals.fetch_add(1, std::memory_order_relaxed);
    t.reopen_backoff_ms = 0;
    RADAR_LOG(kInfo) << "serve: tenant '" << t.cfg.name
                     << "' golden mapping healed — package re-open "
                     << "verified end-to-end, zero-copy recovery restored";
    return;
  }
  t.reopen_backoff_ms = std::min(t.reopen_backoff_ms * 2,
                                 opts_.reopen_backoff_max_ms);
  t.reopen_at_ns = now_ns() + t.reopen_backoff_ms * 1000000;
  RADAR_LOG(kWarn) << "serve: tenant '" << t.cfg.name
                   << "' package re-open still failing verification, "
                   << "next attempt in " << t.reopen_backoff_ms << "ms";
}

void ModelHost::note_detection(Tenant& t) {
  if (opts_.quarantine_threshold <= 0) return;
  const std::int64_t now = now_ns();
  const std::int64_t window = opts_.quarantine_window_ms * 1000000;
  auto& w = t.detect_window_ns;
  w.push_back(now);
  w.erase(std::remove_if(w.begin(), w.end(),
                         [&](std::int64_t d) { return now - d > window; }),
          w.end());
  // A detection on an already-quarantined tenant means the attack is
  // still landing: re-verify and push the readmission out again.
  const bool trip =
      t.quarantined.load(std::memory_order_relaxed) ||
      static_cast<int>(w.size()) >= opts_.quarantine_threshold;
  if (!trip) return;
  quarantine_tenant(t);
  w.clear();
}

void ModelHost::quarantine_tenant(Tenant& t) {
  const bool was =
      t.quarantined.exchange(true, std::memory_order_acq_rel);
  if (!was) t.quarantines.fetch_add(1, std::memory_order_relaxed);

  // Full-arena re-verify against the golden copy under one writer
  // section: concurrent injections are excluded while we scan + repair,
  // and the post-repair rescan proves the arena is code-clean before a
  // readmission deadline is armed.
  quant::QuantizedModel& qm = *t.bundle.qmodel;
  std::size_t repaired = 0, scrubbed = 0;
  bool clean = false;
  {
    quant::EpochGuard::WriterSection ws(*qm.epoch_guard(), 0,
                                        qm.arena().size_bytes());
    core::ScanSession session(*t.scheme, /*threads=*/1);
    session.scan_into(qm, t.recover_report);
    if (t.recover_report.num_flagged_groups() > 0) {
      repaired =
          static_cast<std::size_t>(t.recover_report.num_flagged_groups());
      t.scheme->recover(qm, t.recover_report, opts_.recovery);
      t.groups_recovered.fetch_add(repaired, std::memory_order_relaxed);
      session.scan_into(qm, t.recover_report);
    }
    clean = t.recover_report.num_flagged_groups() == 0;
    // Byte-exact scrub against the golden copy: the scheme's codes only
    // see what they cover (radar2 misses non-MSB flips), but quarantine
    // has the tenant offline anyway — compare every weight byte with the
    // (mmap'd) clean source and rewrite the stragglers. The golden reads
    // touch file-backed pages, so the whole pass runs under the SIGBUS
    // guard: a package truncated after mmap degrades the tenant to its
    // snapshot fallback instead of killing the daemon mid-scrub.
    const std::span<const std::int8_t> golden = t.scheme->clean_arena_bytes();
    if (!golden.empty()) {
      const bool readable = with_sigbus_guard([&] {
        for (std::size_t l = 0; l < qm.num_layers(); ++l) {
          const auto [b0, b1] = qm.layer_byte_range(l);
          for (std::int64_t i = 0; i < b1 - b0; ++i) {
            const std::int8_t want =
                golden[static_cast<std::size_t>(b0 + i)];
            if (qm.get_code(l, i) == want) continue;
            qm.set_code(l, i, want);
            ++scrubbed;
          }
        }
      });
      if (readable) {
        t.bytes_scrubbed.fetch_add(scrubbed, std::memory_order_relaxed);
      } else {
        RADAR_LOG(kError) << "serve: tenant '" << t.cfg.name
                          << "' golden read faulted during scrub "
                          << "(truncated mapping?)";
        if (t.fallback_snapshot &&
            !t.degraded.load(std::memory_order_relaxed))
          degrade_tenant(t);
      }
    }
  }

  // Exponential backoff on consecutive quarantines, capped.
  t.backoff_ms = t.backoff_ms <= 0
                     ? opts_.quarantine_backoff_ms
                     : std::min(t.backoff_ms * 2,
                                opts_.quarantine_backoff_max_ms);
  t.readmit_at_ns = now_ns() + t.backoff_ms * 1000000;
  RADAR_LOG(kWarn) << "serve: tenant '" << t.cfg.name
                   << "' quarantined — full re-verify repaired " << repaired
                   << " group(s), golden scrub rewrote " << scrubbed
                   << " byte(s), codes " << (clean ? "clean" : "STILL DIRTY")
                   << ", readmit in " << t.backoff_ms << "ms";
}

void ModelHost::maybe_readmit(Tenant& t) {
  if (opts_.quarantine_threshold <= 0) return;
  const std::int64_t now = now_ns();
  if (t.quarantined.load(std::memory_order_relaxed)) {
    if (now < t.readmit_at_ns) return;
    t.quarantined.store(false, std::memory_order_release);
    t.readmits.fetch_add(1, std::memory_order_relaxed);
    t.last_readmit_ns = now;
    RADAR_LOG(kInfo) << "serve: tenant '" << t.cfg.name
                     << "' readmitted after " << t.backoff_ms
                     << "ms quarantine backoff";
    return;
  }
  // Backoff decay: a readmitted tenant that stayed detection-free for a
  // full window earns a reset, so a later unrelated incident starts from
  // the base backoff again.
  if (t.backoff_ms > 0 && t.last_readmit_ns >= 0 &&
      now - t.last_readmit_ns > opts_.quarantine_window_ms * 1000000 &&
      (t.detect_window_ns.empty() ||
       now - t.detect_window_ns.back() >
           opts_.quarantine_window_ms * 1000000)) {
    t.backoff_ms = 0;
    t.last_readmit_ns = -1;
  }
}

void ModelHost::scanner_loop() {
  try {
    std::size_t rr = 0;
    while (!stop_scanner_.load(std::memory_order_relaxed) &&
           !scanner_abort_.load(std::memory_order_relaxed)) {
      scanner_heartbeat_ns_.store(now_ns(), std::memory_order_release);
      if (chaos::fire(chaos::points::kScannerStall)) {
        // Wedge without heartbeats: the watchdog must notice and tear
        // us down via scanner_abort_ (which the stall polls, so the
        // join is bounded).
        chaos_stall_ms(chaos::param(chaos::points::kScannerStall, 10000),
                       [this] {
                         return stop_scanner_.load(
                                    std::memory_order_relaxed) ||
                                scanner_abort_.load(
                                    std::memory_order_relaxed);
                       });
        continue;
      }
      if (chaos::fire(chaos::points::kScannerCrash))
        throw Error("chaos: injected scanner crash");
      if (!scanning_.load(std::memory_order_relaxed)) {
        // Readmission + heal deadlines keep ticking while paused.
        for (auto& t : tenants_) {
          maybe_readmit(*t);
          maybe_heal(*t);
        }
        std::this_thread::sleep_for(kScannerIdle);
        continue;
      }
      // Alarms are per-tenant and must not depend on being picked: a
      // monopolizing overdue tenant (or a fleet-wide starved budget)
      // still raises every other tenant's alarm.
      for (auto& tn : tenants_) check_coverage(*tn);
      // Per-tenant coverage deadlines: serve the most-overdue tenant
      // first (largest age/period ratio past 1.0), round-robin when
      // everyone is within deadline. The scheduler state is per-tenant,
      // so preemption costs nothing — the passed-over tenant's sweep
      // resumes exactly where it paused.
      std::size_t pick = rr;
      if (opts_.coverage_period_ms > 0) {
        double worst = 1.0;
        for (std::size_t i = 0; i < tenants_.size(); ++i) {
          const double ratio =
              static_cast<double>(tenants_[i]->scheduler.coverage_age_ns()) /
              (static_cast<double>(opts_.coverage_period_ms) * 1e6);
          if (ratio > worst) {
            worst = ratio;
            pick = i;
          }
        }
      }
      Tenant& t = *tenants_[pick];
      maybe_readmit(t);
      maybe_heal(t);
      const core::ScanScheduler::Slice slice = scan_step(t);
      if (pick == rr) rr = (rr + 1) % tenants_.size();
      // Pacing: sleep out the rest of the slice interval so scanning
      // holds its duty cycle (budget/interval) instead of soaking a
      // core; skipped while any tenant is past its coverage deadline
      // (catch-up beats politeness).
      if (opts_.scan_interval_us > 0 && opts_.scan_budget_us != 0 &&
          opts_.scan_budget_bytes != 0) {
        bool overdue = false;
        if (opts_.coverage_period_ms > 0)
          for (const auto& tn : tenants_)
            overdue = overdue || tn->scheduler.coverage_age_ns() >
                                     opts_.coverage_period_ms * 1000000;
        if (!overdue) {
          const std::int64_t rest =
              opts_.scan_interval_us * 1000 - slice.elapsed_ns;
          if (rest > 0)
            std::this_thread::sleep_for(std::chrono::nanoseconds(rest));
        }
      } else if (opts_.scan_budget_us == 0 ||
                 opts_.scan_budget_bytes == 0) {
        // Starved budget: nothing to do but let coverage age grow (and
        // alarms fire) without spinning.
        std::this_thread::sleep_for(kScannerIdle);
      }
    }
  } catch (const std::exception& e) {
    // The thread dies here; its heartbeat goes stale and the watchdog
    // respawns it. Counted separately from restarts so STATS tells a
    // crash loop apart from a stall.
    scanner_crashes_.fetch_add(1, std::memory_order_relaxed);
    RADAR_LOG(kError) << "serve: scanner thread died: " << e.what();
  }
}

std::size_t ModelHost::inject_faults(std::size_t tenant, int flips,
                                     std::uint64_t seed) {
  RADAR_REQUIRE(tenant < tenants_.size(), "unknown tenant index");
  Tenant& t = *tenants_[tenant];
  quant::QuantizedModel& qm = *t.bundle.qmodel;
  if (flips <= 0) return 0;
  Rng rng(seed);
  const auto sites = rng.sample_without_replacement(
      static_cast<std::size_t>(qm.total_weights()),
      static_cast<std::size_t>(
          std::min<std::int64_t>(flips, qm.total_weights())));
  // Stamp the injection time before any byte changes: detection can
  // legitimately fire mid-burst.
  t.pending_inject_ns.store(now_ns(), std::memory_order_release);
  {
    const auto& arena = qm.arena();
    quant::EpochGuard::WriterSection ws(*qm.epoch_guard(), 0,
                                        arena.size_bytes());
    for (const std::size_t flat : sites) {
      const auto [layer, idx] =
          qm.locate(static_cast<std::int64_t>(flat));
      qm.flip_bit(layer, idx, kMsb);
    }
  }
  t.faults_injected.fetch_add(sites.size(), std::memory_order_relaxed);
  RADAR_LOG(kWarn) << "serve: injected " << sites.size()
                   << " MSB flip(s) into tenant '" << t.cfg.name << "'";
  return sites.size();
}

std::size_t ModelHost::inject_rowhammer(std::size_t tenant, int rows,
                                        std::int64_t activations,
                                        bool double_sided,
                                        std::uint64_t seed) {
  RADAR_REQUIRE(tenant < tenants_.size(), "unknown tenant index");
  RADAR_REQUIRE(rows > 0 && activations > 0,
                "rowhammer injection needs rows > 0 and activations > 0");
  Tenant& t = *tenants_[tenant];
  quant::QuantizedModel& qm = *t.bundle.qmodel;
  attack::RowhammerConfig rc;
  rc.rows = rows;
  rc.activations = activations;
  rc.double_sided = double_sided;
  Rng rng(seed);
  // Stamp the injection time before any byte changes: detection can
  // legitimately fire mid-burst.
  t.pending_inject_ns.store(now_ns(), std::memory_order_release);
  std::size_t made = 0;
  {
    quant::EpochGuard::WriterSection ws(*qm.epoch_guard(), 0,
                                        qm.arena().size_bytes());
    made = attack::rowhammer_attack(qm, rc, rng).flips.size();
  }
  t.faults_injected.fetch_add(made, std::memory_order_relaxed);
  RADAR_LOG(kWarn) << "serve: rowhammer burst on tenant '" << t.cfg.name
                   << "' — " << rows << " row(s), " << activations
                   << " activation(s)" << (double_sided ? ", double-sided" : "")
                   << ", " << made << " weight flip(s) landed";
  return made;
}

HostStats ModelHost::stats() const {
  HostStats out;
  out.scanning = scanning_.load(std::memory_order_relaxed);
  out.queue_rejected = queue_ ? queue_->rejected() : 0;
  out.queue_timeouts = queue_ ? queue_->timed_out() : 0;
  out.scanner_restarts = scanner_restarts_.load(std::memory_order_relaxed);
  out.scanner_crashes = scanner_crashes_.load(std::memory_order_relaxed);
  out.worker_flags = worker_flags_.load(std::memory_order_relaxed);
  for (const auto& w : workers_)
    if (w->wedged.load(std::memory_order_relaxed)) ++out.workers_wedged;
  for (std::size_t ti = 0; ti < tenants_.size(); ++ti) {
    const Tenant& t = *tenants_[ti];
    TenantStats s;
    s.name = t.cfg.name;
    s.golden_mmapped = t.golden_mmapped;
    s.requests = t.requests.load(std::memory_order_relaxed);
    s.errors = t.errors.load(std::memory_order_relaxed);
    for (const auto& w : workers_) s.latency.merge(w->hist[ti].snapshot());
    s.shards_scanned = t.shards_scanned.load(std::memory_order_relaxed);
    s.sweeps = t.sweeps.load(std::memory_order_relaxed);
    s.epoch_retries = t.epoch_retries.load(std::memory_order_relaxed);
    s.epoch_fallbacks = t.epoch_fallbacks.load(std::memory_order_relaxed);
    s.coverage_period_ms = t.sweep_ms.load(std::memory_order_relaxed);
    const std::int64_t sweep_end =
        t.sweep_end_ns.load(std::memory_order_relaxed);
    s.coverage_age_ms =
        sweep_end >= 0 ? (now_ns() - sweep_end) / 1000000 : -1;
    const std::int64_t scan_ns = t.scan_ns.load(std::memory_order_relaxed);
    const std::int64_t scan_bytes =
        t.scan_bytes.load(std::memory_order_relaxed);
    s.scan_bytes_per_sec =
        scan_ns > 0 ? scan_bytes * 1000000000 / scan_ns : 0;
    s.coverage_alarms = t.coverage_alarms.load(std::memory_order_relaxed);
    s.scan_cursor = t.scan_cursor.load(std::memory_order_relaxed);
    s.dirty_pending = t.dirty_pending.load(std::memory_order_relaxed);
    const quant::EpochGuard* g = t.bundle.qmodel->epoch_guard();
    s.writer_sections = g ? g->writer_sections() : 0;
    // Acquire pairs with the release increment in scan_step(): a
    // nonzero detection count implies the matching recovery counters
    // below are already visible.
    s.detections = t.detections.load(std::memory_order_acquire);
    s.groups_recovered =
        t.groups_recovered.load(std::memory_order_relaxed);
    s.faults_injected = t.faults_injected.load(std::memory_order_relaxed);
    s.last_ttd_ns = t.last_ttd_ns.load(std::memory_order_relaxed);
    s.quarantined = t.quarantined.load(std::memory_order_relaxed);
    s.quarantines = t.quarantines.load(std::memory_order_relaxed);
    s.readmits = t.readmits.load(std::memory_order_relaxed);
    s.shed_quarantined =
        t.shed_quarantined.load(std::memory_order_relaxed);
    s.bytes_scrubbed = t.bytes_scrubbed.load(std::memory_order_relaxed);
    s.deadline_expired = t.deadline_expired.load(std::memory_order_relaxed);
    s.recover_failures = t.recover_failures.load(std::memory_order_relaxed);
    s.degraded = t.degraded.load(std::memory_order_relaxed);
    s.degrades = t.degrades.load(std::memory_order_relaxed);
    s.heals = t.heals.load(std::memory_order_relaxed);
    out.tenants.push_back(std::move(s));
  }
  return out;
}

void ModelHost::reset_latency_stats() {
  for (auto& w : workers_)
    for (auto& h : w->hist) h.reset();
  for (auto& t : tenants_) {
    t->requests.store(0, std::memory_order_relaxed);
    t->errors.store(0, std::memory_order_relaxed);
  }
}

std::string HostStats::to_json() const {
  std::ostringstream os;
  os << "{\"scanning\":" << (scanning ? "true" : "false")
     << ",\"queue_rejected\":" << queue_rejected
     << ",\"queue_timeouts\":" << queue_timeouts
     << ",\"scanner_restarts\":" << scanner_restarts
     << ",\"scanner_crashes\":" << scanner_crashes
     << ",\"worker_flags\":" << worker_flags
     << ",\"workers_wedged\":" << workers_wedged << ",\"tenants\":[";
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantStats& t = tenants[i];
    if (i) os << ",";
    os << "{\"name\":\"" << t.name << "\""
       << ",\"golden_mmapped\":" << (t.golden_mmapped ? "true" : "false")
       << ",\"requests\":" << t.requests << ",\"errors\":" << t.errors
       << ",\"p50_ns\":" << t.latency.quantile(0.50)
       << ",\"p99_ns\":" << t.latency.quantile(0.99)
       << ",\"p999_ns\":" << t.latency.quantile(0.999)
       << ",\"max_ns\":" << t.latency.max
       << ",\"shards_scanned\":" << t.shards_scanned
       << ",\"sweeps\":" << t.sweeps
       << ",\"coverage_period_ms\":" << t.coverage_period_ms
       << ",\"coverage_age_ms\":" << t.coverage_age_ms
       << ",\"scan_bytes_per_sec\":" << t.scan_bytes_per_sec
       << ",\"coverage_alarms\":" << t.coverage_alarms
       << ",\"scan_cursor\":" << t.scan_cursor
       << ",\"dirty_pending\":" << t.dirty_pending
       << ",\"epoch_retries\":" << t.epoch_retries
       << ",\"epoch_fallbacks\":" << t.epoch_fallbacks
       << ",\"writer_sections\":" << t.writer_sections
       << ",\"detections\":" << t.detections
       << ",\"groups_recovered\":" << t.groups_recovered
       << ",\"faults_injected\":" << t.faults_injected
       << ",\"last_ttd_ns\":" << t.last_ttd_ns
       << ",\"quarantined\":" << (t.quarantined ? "true" : "false")
       << ",\"quarantines\":" << t.quarantines
       << ",\"readmits\":" << t.readmits
       << ",\"shed_quarantined\":" << t.shed_quarantined
       << ",\"bytes_scrubbed\":" << t.bytes_scrubbed
       << ",\"deadline_expired\":" << t.deadline_expired
       << ",\"recover_failures\":" << t.recover_failures
       << ",\"degraded\":" << (t.degraded ? "true" : "false")
       << ",\"degrades\":" << t.degrades << ",\"heals\":" << t.heals
       << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace radar::serve
