// Daemon: a line-oriented Unix-domain-socket front end for ModelHost.
//
// The protocol is one ASCII command per line, one reply line per
// command — deliberately trivial so the load generator, the CI smoke
// script (via a few lines of shell) and a human with `nc -U` all speak
// it:
//
//   PING                      -> PONG
//   TENANTS                   -> OK <name>...
//   INFER <tenant> [deadline_ms] -> OK <predicted> <latency_ns>
//   INJECT <tenant> <n> <seed>-> OK <flips_made>      (iid MSB flips)
//   INJECT <tenant> rowhammer <rows> <activations> <seed> [double]
//                             -> OK <flips_made>      (correlated burst)
//   SCAN ON|OFF               -> OK
//   CHAOS ARM <point> <prob> <seed> [param] [max_fires] -> OK
//   CHAOS DISARM <point>|ALL  -> OK
//   CHAOS STATS               -> OK <fault-point json>
//   DETECTIONS                -> OK <total_detections>
//   STATS                     -> OK <host stats json>
//   SHUTDOWN                  -> OK   (daemon exits its wait loop)
//
// Unknown commands and failures reply "ERR <message>"; retryable
// failures (shed, quarantined) append " RETRY-AFTER=<ms>" so clients
// can back off intelligently. INFER runs a pre-sliced input from the
// tenant's held-out set (cycling cursor), so request handling allocates
// nothing per call beyond the reply string. Each accepted connection
// gets its own thread; reads and writes are poll-based with an idle
// timeout (a stalled or vanished client cannot pin a handler thread),
// command lines are capped at kMaxLineBytes, and the accept loop polls
// with a timeout so stop() takes effect promptly. Unix-only — on other
// platforms construction throws and the in-process ModelHost API is the
// way in.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/host.h"

namespace radar::serve {

class Daemon {
 public:
  /// Longest accepted command line; anything longer gets "ERR line too
  /// long" and the connection closed (a runaway or hostile client must
  /// not grow an unbounded buffer).
  static constexpr std::size_t kMaxLineBytes = 4096;

  /// `host` must outlive the daemon and have its tenants added already
  /// (start() starts the host if the caller has not). `conn_timeout_ms`
  /// is the per-connection idle/write-stall timeout (0: never time out).
  Daemon(ModelHost& host, std::string socket_path,
         std::int64_t conn_timeout_ms = 30000);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bind + listen + spawn the accept loop. Throws radar::Error when the
  /// socket cannot be created (path too long, bind failure, non-unix).
  void start();
  /// Close the listener, join client threads, remove the socket file.
  /// Does not stop the host. Idempotent.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Block until a client sends SHUTDOWN, stop() is called, or — after
  /// install_signal_handlers() — the process receives SIGINT/SIGTERM.
  void wait();

  /// Route SIGINT/SIGTERM into the wait() loop so `kill` and Ctrl-C shut
  /// the daemon down as cleanly as a SHUTDOWN command (the caller's
  /// stop()/host.stop() sequence closes the socket, drains the request
  /// queue and joins the scanner). Process-wide; call once.
  static void install_signal_handlers();
  /// True once a handled signal arrived (process-wide flag).
  static bool signal_requested();

  const std::string& socket_path() const { return socket_path_; }

  /// Execute one protocol line against the host (no socket needed —
  /// exposed for tests and the in-process loadgen client).
  std::string handle_line(const std::string& line);

 private:
  void accept_loop();
  void client_loop(int fd);
  /// Poll-based reply write honoring the connection timeout and the
  /// socket chaos points. False when the connection should close.
  bool write_reply(int fd, const std::string& reply);

  ModelHost& host_;
  std::string socket_path_;
  std::int64_t conn_timeout_ms_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::vector<std::thread> client_threads_;
  std::mutex clients_mu_;

  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::mutex wait_mu_;
  std::condition_variable wait_cv_;

  /// Pre-sliced single-image inputs per tenant + a cycling cursor, so
  /// INFER never allocates an input tensor.
  struct InputPool {
    std::vector<nn::Tensor> inputs;
    std::atomic<std::size_t> cursor{0};
  };
  std::vector<std::unique_ptr<InputPool>> inputs_;
};

}  // namespace radar::serve
