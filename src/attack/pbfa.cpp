#include "attack/pbfa.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/logging.h"
#include "nn/loss.h"

namespace radar::attack {

namespace {

/// A candidate flip with its first-order damage estimate.
struct Candidate {
  std::size_t layer;
  std::int64_t index;
  int bit;
  float proxy;  ///< g * Δw (positive = expected loss increase)
};

/// Most damaging admissible bit for a weight with gradient g: the flip
/// must move the dequantized weight in the +g direction (gradient ascent
/// on the loss); among admissible bits pick max |Δw|.
bool best_bit_for(std::int8_t code, float grad, float scale,
                  const std::vector<int>& allowed, Candidate& out) {
  float best_proxy = 0.0f;
  int best_bit = -1;
  for (int b : allowed) {
    const int delta_code = radar::flip_delta(code, b);
    const float delta_w = static_cast<float>(delta_code) * scale;
    const float proxy = grad * delta_w;
    if (proxy > best_proxy) {
      best_proxy = proxy;
      best_bit = b;
    }
  }
  if (best_bit < 0) return false;
  out.bit = best_bit;
  out.proxy = best_proxy;
  return true;
}

}  // namespace

float evaluate_loss(quant::QuantizedModel& qm, const data::Batch& batch) {
  nn::SoftmaxCrossEntropy ce;
  nn::Tensor logits = qm.network().forward(batch.images, nn::Mode::kEval);
  return ce.forward(logits, batch.labels);
}

AttackResult Pbfa::run(quant::QuantizedModel& qm,
                       const data::Batch& attack_batch, int n_bf) {
  AttackResult result;
  nn::SoftmaxCrossEntropy ce;
  // Targeted mode: the attacker *minimizes* cross-entropy toward the
  // target class; we fold that into a sign so the same "increase the
  // objective" greedy loop serves both variants.
  const bool targeted = cfg_.target_class >= 0;
  std::vector<int> labels = attack_batch.labels;
  if (targeted) {
    labels.assign(labels.size(), cfg_.target_class);
  }
  const float objective_sign = targeted ? -1.0f : 1.0f;
  auto objective = [&]() {
    nn::SoftmaxCrossEntropy loss_fn;
    nn::Tensor logits =
        qm.network().forward(attack_batch.images, nn::Mode::kEval);
    return objective_sign * loss_fn.forward(logits, labels);
  };
  result.loss_before = evaluate_loss(qm, attack_batch);
  float current_objective = objective();

  for (int flip_round = 0; flip_round < n_bf; ++flip_round) {
    // 1. Gradient of the eval-mode network w.r.t. every weight.
    qm.network().zero_grad();
    nn::Tensor logits =
        qm.network().forward(attack_batch.images, nn::Mode::kGrad);
    ce.forward(logits, labels);
    qm.network().backward(ce.backward());

    // 2. Per-layer top-k candidate sites by |gradient|.
    std::vector<Candidate> candidates;
    for (std::size_t li = 0; li < qm.num_layers(); ++li) {
      auto& ql = qm.layer(li);
      const nn::Tensor& grad = ql.param->grad;
      const std::int64_t n = ql.size();
      const int k = std::min<std::int64_t>(cfg_.candidates_per_layer, n);
      // Partial selection of the k largest |grad| indices.
      std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i)
        idx[static_cast<std::size_t>(i)] = i;
      std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                        [&grad](std::int64_t a, std::int64_t b) {
                          return std::fabs(grad[a]) > std::fabs(grad[b]);
                        });
      for (int c = 0; c < k; ++c) {
        const std::int64_t wi = idx[static_cast<std::size_t>(c)];
        Candidate cand;
        cand.layer = li;
        cand.index = wi;
        if (best_bit_for(ql.q[static_cast<std::size_t>(wi)],
                         objective_sign * grad[wi], ql.scale,
                         cfg_.allowed_bits, cand))
          candidates.push_back(cand);
      }
    }
    if (candidates.empty()) break;  // nothing can increase the loss

    // 3. Budgeted exact evaluation of the strongest candidates.
    const std::size_t budget =
        std::min<std::size_t>(candidates.size(),
                              static_cast<std::size_t>(cfg_.eval_budget));
    std::partial_sort(candidates.begin(), candidates.begin() + budget,
                      candidates.end(),
                      [](const Candidate& a, const Candidate& b) {
                        return a.proxy > b.proxy;
                      });

    float best_objective = current_objective;
    int best = -1;
    for (std::size_t c = 0; c < budget; ++c) {
      const Candidate& cand = candidates[c];
      const std::int8_t before = qm.flip_bit(cand.layer, cand.index, cand.bit);
      const float obj = objective();
      // Revert.
      qm.set_code(cand.layer, cand.index, before);
      if (obj > best_objective) {
        best_objective = obj;
        best = static_cast<int>(c);
      }
    }
    if (best < 0) {
      // No exact evaluation improved the loss; fall back to the strongest
      // proxy candidate (mirrors BFA, which always commits a flip).
      best = 0;
      const Candidate& cand = candidates[0];
      const std::int8_t before = qm.flip_bit(cand.layer, cand.index, cand.bit);
      qm.set_code(cand.layer, cand.index, before);
    }

    const Candidate& chosen = candidates[static_cast<std::size_t>(best)];
    BitFlip flip;
    flip.layer = chosen.layer;
    flip.index = chosen.index;
    flip.bit = chosen.bit;
    flip.before = qm.flip_bit(chosen.layer, chosen.index, chosen.bit);
    flip.after = qm.get_code(chosen.layer, chosen.index);
    result.flips.push_back(flip);
    current_objective = objective();
    if (cfg_.verbose) {
      RADAR_LOG(kDebug) << "pbfa flip " << (flip_round + 1) << ": layer "
                        << flip.layer << " idx " << flip.index << " bit "
                        << flip.bit << " objective " << current_objective;
    }
  }
  result.loss_after = evaluate_loss(qm, attack_batch);
  return result;
}

}  // namespace radar::attack
