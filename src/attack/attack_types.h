// Common attack types: bit-flip records and attack outcomes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace radar::attack {

/// One committed weight-bit flip.
struct BitFlip {
  std::size_t layer = 0;   ///< quantized-layer index
  std::int64_t index = 0;  ///< weight index within the layer
  int bit = 7;             ///< 0 = LSB .. 7 = MSB
  std::int8_t before = 0;  ///< code before the flip
  std::int8_t after = 0;   ///< code after the flip

  bool flips_msb() const { return bit == 7; }
  /// True for a 0→1 transition of the targeted bit.
  bool zero_to_one() const {
    return ((static_cast<std::uint8_t>(after) >> bit) & 1u) == 1u;
  }
};

/// Outcome of one attack run.
struct AttackResult {
  std::vector<BitFlip> flips;
  float loss_before = 0.0f;
  float loss_after = 0.0f;
  double accuracy_after = -1.0;  ///< filled by callers that evaluate it

  std::vector<std::pair<std::size_t, std::int64_t>> flip_sites() const {
    std::vector<std::pair<std::size_t, std::int64_t>> out;
    out.reserve(flips.size());
    for (const auto& f : flips) out.emplace_back(f.layer, f.index);
    return out;
  }
};

/// Serialize / restore a set of attack rounds (profile cache).
void save_profiles(const std::string& path,
                   const std::vector<AttackResult>& rounds);
std::vector<AttackResult> load_profiles(const std::string& path);

}  // namespace radar::attack
