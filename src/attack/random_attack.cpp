#include "attack/random_attack.h"

#include "common/bits.h"

namespace radar::attack {

namespace {
AttackResult flip_random_sites(quant::QuantizedModel& qm, int n, Rng& rng,
                               bool msb_only) {
  AttackResult result;
  const std::int64_t total = qm.total_weights();
  // Distinct weight sites; the bit within a site is free (or MSB).
  const auto sites = rng.sample_without_replacement(
      static_cast<std::size_t>(total), static_cast<std::size_t>(n));
  for (const std::size_t flat : sites) {
    // Map the flat index onto (layer, index).
    std::int64_t rem = static_cast<std::int64_t>(flat);
    std::size_t layer = 0;
    while (rem >= qm.layer(layer).size()) {
      rem -= qm.layer(layer).size();
      ++layer;
    }
    BitFlip f;
    f.layer = layer;
    f.index = rem;
    f.bit = msb_only ? radar::kMsb
                     : static_cast<int>(rng.uniform_int(0, 7));
    f.before = qm.flip_bit(layer, rem, f.bit);
    f.after = qm.get_code(layer, rem);
    result.flips.push_back(f);
  }
  return result;
}
}  // namespace

AttackResult random_bit_flips(quant::QuantizedModel& qm, int n, Rng& rng) {
  return flip_random_sites(qm, n, rng, /*msb_only=*/false);
}

AttackResult random_msb_flips(quant::QuantizedModel& qm, int n, Rng& rng) {
  return flip_random_sites(qm, n, rng, /*msb_only=*/true);
}

}  // namespace radar::attack
