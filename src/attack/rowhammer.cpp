#include "attack/rowhammer.h"

#include <unordered_set>
#include <utility>
#include <vector>

#include "common/error.h"

namespace radar::attack {

AttackResult rowhammer_attack(quant::QuantizedModel& qm,
                              const RowhammerConfig& cfg, Rng& rng) {
  RADAR_REQUIRE(cfg.rows > 0, "rowhammer needs at least one victim row");
  const std::int64_t bytes = qm.arena().size_bytes();

  sim::DramConfig dc = cfg.dram;
  dc.seed = rng.bits();  // fresh per-trial cell map, derived from the stream
  if (dc.num_rows <= 0) {
    // Auto-size: just enough rows per bank to hold the arena, plus slack
    // so edge rows keep both neighbours.
    const std::int64_t per_bank =
        dc.channels * dc.ranks * dc.banks * dc.row_bytes;
    dc.num_rows = (bytes + per_bank - 1) / per_bank + 2;
  }
  sim::DramModel dram(dc);
  RADAR_REQUIRE(bytes <= dram.capacity_bytes(),
                "weight arena does not fit the DRAM geometry");
  dram.map_buffer(0, bytes);

  // Arena byte offset -> (layer, weight index). Offsets landing in the
  // inter-layer alignment padding are physically flipped but harmless —
  // they corrupt no weight, so they are not recorded.
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
  ranges.reserve(qm.num_layers());
  for (std::size_t l = 0; l < qm.num_layers(); ++l)
    ranges.push_back(qm.layer_byte_range(l));

  AttackResult result;
  std::unordered_set<std::int64_t> seen;  // a flipped cell stays flipped
  for (int r = 0; r < cfg.rows; ++r) {
    // A victim row that provably contains mapped bytes: decompose a
    // random in-buffer offset and aim at its row.
    const sim::PhysAddr victim =
        dram.decompose(rng.uniform_int(0, bytes - 1));
    const auto flips =
        dram.hammer_victim(victim, cfg.activations, cfg.double_sided, rng);
    for (const sim::DramFlip& df : flips) {
      if (df.offset < 0 || df.offset >= bytes) continue;  // past the arena
      if (!seen.insert(df.offset * 8 + df.bit).second) continue;
      std::size_t layer = qm.num_layers();
      for (std::size_t l = 0; l < ranges.size(); ++l) {
        if (df.offset >= ranges[l].first && df.offset < ranges[l].second) {
          layer = l;
          break;
        }
      }
      if (layer == qm.num_layers()) continue;  // alignment padding
      BitFlip f;
      f.layer = layer;
      f.index = df.offset - ranges[layer].first;
      f.bit = df.bit;
      f.before = qm.flip_bit(layer, f.index, f.bit);
      f.after = qm.get_code(layer, f.index);
      result.flips.push_back(f);
    }
  }
  return result;
}

}  // namespace radar::attack
