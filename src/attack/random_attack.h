// Random bit-flip attacker — the weak baseline the paper dismisses
// (§III.B: 100 random flips degrade accuracy by <1%) and the fault model
// for the §VI.B Monte-Carlo miss-rate study.
#pragma once

#include "attack/attack_types.h"
#include "common/rng.h"
#include "quant/qmodel.h"

namespace radar::attack {

/// Flip `n` uniformly random (layer, weight, bit) sites.
AttackResult random_bit_flips(quant::QuantizedModel& qm, int n, Rng& rng);

/// Flip `n` random *MSB* bits (the fault model of the miss-rate study).
AttackResult random_msb_flips(quant::QuantizedModel& qm, int n, Rng& rng);

}  // namespace radar::attack
