#include "attack/profile_stats.h"

#include <map>

#include "common/bits.h"
#include "common/error.h"

namespace radar::attack {

BitPositionStats bit_position_stats(const std::vector<AttackResult>& rounds) {
  BitPositionStats s;
  for (const auto& round : rounds) {
    for (const auto& f : round.flips) {
      if (!f.flips_msb()) {
        ++s.others;
      } else if (f.zero_to_one()) {
        ++s.msb_zero_to_one;
      } else {
        ++s.msb_one_to_zero;
      }
    }
  }
  return s;
}

const char* WeightRangeStats::range_name(std::size_t i) {
  switch (i) {
    case 0: return "(-128, -32)";
    case 1: return "(-32, 0)";
    case 2: return "(0, 32)";
    case 3: return "(32, 127)";
  }
  return "?";
}

WeightRangeStats weight_range_stats(const std::vector<AttackResult>& rounds) {
  WeightRangeStats s;
  for (const auto& round : rounds) {
    for (const auto& f : round.flips) {
      const int v = f.before;
      if (v < -32)
        ++s.counts[0];
      else if (v < 0)
        ++s.counts[1];
      else if (v < 32)
        ++s.counts[2];
      else
        ++s.counts[3];
    }
  }
  return s;
}

double multi_flip_group_proportion(const std::vector<AttackResult>& rounds,
                                   const std::vector<std::int64_t>& layer_sizes,
                                   std::int64_t group_size, bool interleave,
                                   std::int64_t skew) {
  std::vector<core::GroupLayout> layouts;
  layouts.reserve(layer_sizes.size());
  for (const std::int64_t sz : layer_sizes) {
    layouts.push_back(interleave
                          ? core::GroupLayout::interleaved(sz, group_size, skew)
                          : core::GroupLayout::contiguous(sz, group_size));
  }
  std::int64_t groups_hit = 0, groups_multi = 0;
  for (const auto& round : rounds) {
    std::map<std::pair<std::size_t, std::int64_t>, int> per_group;
    for (const auto& f : round.flips) {
      RADAR_REQUIRE(f.layer < layouts.size(), "profile layer out of range");
      const std::int64_t g = layouts[f.layer].group_of(f.index);
      ++per_group[{f.layer, g}];
    }
    for (const auto& [key, count] : per_group) {
      ++groups_hit;
      if (count >= 2) ++groups_multi;
    }
  }
  return groups_hit == 0
             ? 0.0
             : static_cast<double>(groups_multi) /
                   static_cast<double>(groups_hit);
}

}  // namespace radar::attack
