// Progressive Bit-Flip Attack (Rakin et al., ICCV 2019) — the adversary
// RADAR is designed against.
//
// Each iteration:
//   1. one backward pass on the attack batch gives ∂L/∂w for every
//      quantized weight (straight-through: gradients of the dequantized
//      float mirror);
//   2. per layer, the top-k weights by |gradient| become candidate sites;
//      for each site the most damaging admissible bit is the one whose
//      flip moves the weight in the gradient-ascent direction with the
//      largest |Δw| (for unrestricted attacks this is the MSB);
//   3. candidates are ranked by the first-order proxy g·Δw and the best
//      `eval_budget` are evaluated exactly (flip → forward → loss →
//      revert); the globally best flip is committed.
//
// Step 3's budgeted exact evaluation is the CPU-friendly equivalent of
// BFA's per-layer exhaustive evaluation; with a generous budget the two
// coincide (every candidate that could win is evaluated exactly).
#pragma once

#include <vector>

#include "attack/attack_types.h"
#include "data/synthetic.h"
#include "quant/qmodel.h"

namespace radar::attack {

struct PbfaConfig {
  int candidates_per_layer = 4;  ///< top-k gradient sites per layer
  int eval_budget = 12;          ///< exact loss evaluations per iteration
  /// Bits the attacker may flip (default: all; {6} models the §VIII
  /// MSB-1-restricted attacker; {7} restricts to MSB only).
  std::vector<int> allowed_bits = {0, 1, 2, 3, 4, 5, 6, 7};
  /// >= 0 selects the *targeted* variant (Rakin et al.): instead of
  /// maximizing the true-label loss, drive every input toward this class.
  int target_class = -1;
  bool verbose = false;
};

class Pbfa {
 public:
  explicit Pbfa(const PbfaConfig& cfg = {}) : cfg_(cfg) {}

  /// Commit `n_bf` flips into `qm` (mutates the int8 buffers and float
  /// mirror). The attack batch plays the paper's "small dataset with a
  /// similar distribution" role.
  AttackResult run(quant::QuantizedModel& qm, const data::Batch& attack_batch,
                   int n_bf);

  const PbfaConfig& config() const { return cfg_; }

 private:
  PbfaConfig cfg_;
};

/// Cross-entropy loss of the deployed model on a batch (eval mode).
float evaluate_loss(quant::QuantizedModel& qm, const data::Batch& batch);

}  // namespace radar::attack
