#include "attack/attack_types.h"

#include "common/serialize.h"

namespace radar::attack {

namespace {
constexpr std::uint32_t kProfileVersion = 2;
}

void save_profiles(const std::string& path,
                   const std::vector<AttackResult>& rounds) {
  BinaryWriter w(path, kProfileVersion);
  w.write_u64(rounds.size());
  for (const auto& r : rounds) {
    w.write_f32(r.loss_before);
    w.write_f32(r.loss_after);
    w.write_f32(static_cast<float>(r.accuracy_after));
    w.write_u64(r.flips.size());
    for (const auto& f : r.flips) {
      w.write_u64(f.layer);
      w.write_i64(f.index);
      w.write_u8(static_cast<std::uint8_t>(f.bit));
      w.write_u8(static_cast<std::uint8_t>(f.before));
      w.write_u8(static_cast<std::uint8_t>(f.after));
    }
  }
  w.close();
}

std::vector<AttackResult> load_profiles(const std::string& path) {
  BinaryReader r(path, kProfileVersion);
  const auto n = r.read_u64();
  // Each round is at least 20 bytes on disk; a corrupted count cannot ask
  // for more rounds than the file could hold.
  if (n > r.remaining() / 20)
    throw SerializationError("corrupt round count in " + path);
  std::vector<AttackResult> rounds(n);
  for (auto& round : rounds) {
    round.loss_before = r.read_f32();
    round.loss_after = r.read_f32();
    round.accuracy_after = r.read_f32();
    const auto nf = r.read_u64();
    if (nf > r.remaining() / 19)  // 19 bytes per serialized flip
      throw SerializationError("corrupt flip count in " + path);
    round.flips.resize(nf);
    for (auto& f : round.flips) {
      f.layer = r.read_u64();
      f.index = r.read_i64();
      f.bit = static_cast<int>(r.read_u8());
      f.before = static_cast<std::int8_t>(r.read_u8());
      f.after = static_cast<std::int8_t>(r.read_u8());
    }
  }
  return rounds;
}

}  // namespace radar::attack
