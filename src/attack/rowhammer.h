// Rowhammer attacker: spatially correlated BitFlip bursts.
//
// The iid attackers (random/random_msb) model each flip as independent;
// real Rowhammer flips cluster by physical DRAM row — one hammered row
// dumps tens of flips whose arena offsets are determined by the address
// mapping, often inside a single protection group. This attacker closes
// that gap: it places the weight arena into the sim::DramModel geometry,
// picks victim rows that contain model bytes, hammers their neighbours
// (optionally double-sided), and commits every harvested flip. Detection
// and recovery then face the burst regime the paper's iid sweeps never
// exercise.
#pragma once

#include "attack/attack_types.h"
#include "common/rng.h"
#include "quant/qmodel.h"
#include "sim/dram.h"

namespace radar::attack {

struct RowhammerConfig {
  /// Geometry + vulnerability + threshold. `num_rows` <= 0 auto-sizes the
  /// per-bank row count to just fit the arena; `seed` is replaced by a
  /// draw from the caller's rng so each trial gets a fresh cell map.
  sim::DramConfig dram = [] {
    sim::DramConfig d;
    d.banks = 8;
    d.num_rows = 0;
    d.mapping = sim::AddressMapping::kBankStripe;
    return d;
  }();
  int rows = 1;  ///< victim rows attacked (one correlated burst each)
  std::int64_t activations = 150000;  ///< per aggressor row
  bool double_sided = false;
};

/// Run one rowhammer campaign trial against `qm`: every flip is committed
/// to the model and recorded (arena-padding and repeat cells are
/// dropped). Deterministic given `rng`'s state.
AttackResult rowhammer_attack(quant::QuantizedModel& qm,
                              const RowhammerConfig& cfg, Rng& rng);

}  // namespace radar::attack
