// Knowledgeable attacker (paper §VIII).
//
// Knows an addition-checksum defense exists but not the secret key or the
// interleaving: after committing the usual PBFA flips, it adds decoy flip
// *pairs* of the form (0→1, 1→0) inside what it believes is the same
// checksum group (assuming contiguous grouping of its assumed size). If
// the defender indeed uses contiguous groups and no masking, each pair
// sums to zero and the whole attack is invisible to the checksum.
#pragma once

#include "attack/attack_types.h"
#include "attack/pbfa.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "quant/qmodel.h"

namespace radar::attack {

struct KnowledgeableConfig {
  PbfaConfig pbfa;
  std::int64_t assumed_group_size = 512;  ///< attacker's guess of G
};

class KnowledgeableAttacker {
 public:
  explicit KnowledgeableAttacker(const KnowledgeableConfig& cfg = {})
      : cfg_(cfg) {}

  /// Runs PBFA for `n_primary` flips, then pairs every primary MSB flip
  /// with a canceling decoy MSB flip (opposite transition direction) in
  /// the same *assumed* contiguous group. Result contains primary + decoy
  /// flips (≈ 2 × n_primary total, matching the paper's 20-flip setup).
  AttackResult run(quant::QuantizedModel& qm, const data::Batch& attack_batch,
                   int n_primary, Rng& rng);

 private:
  KnowledgeableConfig cfg_;
};

}  // namespace radar::attack
