// Statistics over attack profiles — reproduces the paper's PBFA
// characterization (Table I, Table II, Fig. 2).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "attack/attack_types.h"
#include "core/interleave.h"

namespace radar::attack {

/// Table I: flip counts by bit position and direction.
struct BitPositionStats {
  std::int64_t msb_zero_to_one = 0;
  std::int64_t msb_one_to_zero = 0;
  std::int64_t others = 0;

  std::int64_t total() const {
    return msb_zero_to_one + msb_one_to_zero + others;
  }
};

BitPositionStats bit_position_stats(const std::vector<AttackResult>& rounds);

/// Table II: histogram of pre-attack weight codes over the paper's four
/// ranges [-128,-32), [-32,0), [0,32), [32,127].
struct WeightRangeStats {
  std::array<std::int64_t, 4> counts{};  // same order as the paper

  static const char* range_name(std::size_t i);
};

WeightRangeStats weight_range_stats(const std::vector<AttackResult>& rounds);

/// Fig. 2: fraction of attacked groups that received >= 2 flips, for a
/// given grouping of each layer. `layer_sizes[l]` is the weight count of
/// quantized layer l (must cover every layer referenced by the profiles).
double multi_flip_group_proportion(const std::vector<AttackResult>& rounds,
                                   const std::vector<std::int64_t>& layer_sizes,
                                   std::int64_t group_size, bool interleave,
                                   std::int64_t skew = 3);

}  // namespace radar::attack
