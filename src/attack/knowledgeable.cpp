#include "attack/knowledgeable.h"

#include "common/bits.h"

namespace radar::attack {

AttackResult KnowledgeableAttacker::run(quant::QuantizedModel& qm,
                                        const data::Batch& attack_batch,
                                        int n_primary, Rng& rng) {
  Pbfa pbfa(cfg_.pbfa);
  AttackResult result = pbfa.run(qm, attack_batch, n_primary);

  // For every primary MSB flip, craft a decoy in the same assumed
  // (contiguous) group whose MSB transition has the opposite direction, so
  // the pair's net checksum contribution is zero under an unmasked,
  // non-interleaved addition checksum.
  const std::int64_t g = cfg_.assumed_group_size;
  std::vector<BitFlip> decoys;
  for (const BitFlip& primary : result.flips) {
    if (!primary.flips_msb()) continue;
    const auto& ql = qm.layer(primary.layer);
    const std::int64_t group_begin = (primary.index / g) * g;
    const std::int64_t group_end = std::min(group_begin + g, ql.size());
    const bool want_zero_to_one = !primary.zero_to_one();
    // Scan the assumed group (random start) for a weight whose MSB equals
    // the value we want to flip *from*.
    const std::int64_t span = group_end - group_begin;
    const std::int64_t start = rng.uniform_int(0, span - 1);
    std::int64_t decoy_idx = -1;
    for (std::int64_t off = 0; off < span; ++off) {
      const std::int64_t idx = group_begin + (start + off) % span;
      if (idx == primary.index) continue;
      const std::int8_t code = qm.get_code(primary.layer, idx);
      const bool msb_is_one = radar::get_bit(code, radar::kMsb);
      if (msb_is_one != want_zero_to_one) {
        decoy_idx = idx;
        break;
      }
    }
    if (decoy_idx < 0) continue;  // no canceling partner in this group
    BitFlip d;
    d.layer = primary.layer;
    d.index = decoy_idx;
    d.bit = radar::kMsb;
    d.before = qm.flip_bit(primary.layer, decoy_idx, radar::kMsb);
    d.after = qm.get_code(primary.layer, decoy_idx);
    decoys.push_back(d);
  }
  result.flips.insert(result.flips.end(), decoys.begin(), decoys.end());
  result.loss_after = evaluate_loss(qm, attack_batch);
  return result;
}

}  // namespace radar::attack
