// CampaignReport: aggregated results of one campaign run.
//
// One CellStats per (attacker, fault rate, scheme) cell of the expanded
// matrix, in deterministic cell-major order. Serialization is carefully
// reproducible: identical trial results yield byte-identical JSON and CSV
// no matter how many worker threads produced them — wall-clock timing is
// kept out of the default serialization (opt in with include_timing) so
// reports can be diffed across runs and thread counts.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace radar::campaign {

/// Aggregates of one campaign cell over `trials` Monte-Carlo trials.
/// A cell's matrix position is its index in CampaignReport::cells
/// (cell-major order, addressed via CampaignReport::cell()).
struct CellStats {
  std::string attacker;  ///< AttackerSpec::label()
  std::string scheme;    ///< SchemeSpec::label()
  double fault_rate = 0.0;
  int trials = 0;
  double mean_flips = 0.0;     ///< injected flips per trial (incl. faults)
  double mean_detected = 0.0;  ///< flips landing in flagged groups
  double detection_rate = 0.0;        ///< mean_detected / mean_flips
  double trial_detection_rate = 0.0;  ///< trials with any detection
  double miss_rate = 0.0;  ///< trials with flips but no detection
  double mean_flagged_groups = 0.0;
  double mean_acc_attacked = -1.0;   ///< -1: accuracy not evaluated
  double mean_acc_recovered = -1.0;  ///< -1: accuracy not evaluated
};

/// Telemetry of a ScanMode::kScheduled run: the budget knobs and the
/// measured detection-latency / coverage side of the QoS tradeoff.
/// Serialized only inside the timing-gated JSON section so scheduled
/// reports still diff byte-identical against kFull by default.
struct ScheduledStats {
  bool enabled = false;
  std::int64_t budget_us = -1, budget_bytes = -1, chunk_bytes = 0;
  std::int64_t trials = 0;
  std::int64_t detected_trials = 0;  ///< trials with any flagged slice
  std::int64_t batches = 0;  ///< inference batches interleaved with slices
  double mean_slices_per_sweep = 0.0;
  /// Slices until the first flagged slice (time-to-detect in scheduler
  /// slices — deterministic under a pure byte budget). -1: no detection.
  std::int64_t worst_ttd_slices = -1;
  double mean_ttd_slices = -1.0;
  double mean_ttd_ms = -1.0, worst_ttd_ms = -1.0;
  double mean_sweep_ms = 0.0;  ///< measured coverage period per trial
  double scan_bytes_per_sec = 0.0;  ///< inside run_slice wall time
  double p99_batch_ms = -1.0;  ///< inference batch latency while scanning
};

struct CampaignReport {
  std::string name, model;
  std::uint64_t seed = 0;
  int trials = 0;
  double clean_accuracy = -1.0;  ///< -1 when eval_subset == 0
  /// Cell-major: attacker-major, then fault rate, then scheme.
  std::vector<CellStats> cells;
  std::size_t num_fault_rates = 1, num_schemes = 1;

  // Wall-clock diagnostics (console only by default).
  double profile_seconds = 0.0;  ///< attack/profile phase
  double eval_seconds = 0.0;     ///< scan/recover/evaluate phase
  std::size_t threads = 1;
  /// Test images actually forwarded through the int8 engine per phase
  /// (clean-cache hits are excluded); eval_images / eval_seconds is the
  /// end-to-end inference throughput of the evaluation phase.
  std::int64_t profile_images = 0;
  std::int64_t eval_images = 0;
  /// ScanMode::kScheduled telemetry (enabled == false otherwise).
  ScheduledStats scheduled;

  const CellStats& cell(std::size_t attacker, std::size_t fault,
                        std::size_t scheme) const;

  std::string to_json(bool include_timing = false) const;
  std::string to_csv() const;
  /// Human-readable summary table.
  void print(std::FILE* out = stdout) const;
};

}  // namespace radar::campaign
