// CampaignSpec: a declarative attack-campaign description.
//
// The paper's claims are sweep-shaped — detection and recovery rates over
// attacker models, protection schemes and fault rates — and every such
// sweep is the same matrix: attackers × fault rates × schemes, repeated
// for `trials` Monte-Carlo rounds on one model. A spec names that matrix
// once; the CampaignRunner expands it into independent trials. Specs
// round-trip through JSON so campaigns can be versioned, diffed, and run
// from the CLI (`radar_cli campaign <spec.json>`):
//
//   {
//     "name": "smoke",
//     "model": "tiny",              // tiny | resnet20 | resnet18
//     "train": false,               // false: raw init (fast, no cache)
//     "trials": 3,
//     "seed": 66,
//     "eval_subset": 0,             // 0: detection-only (no accuracy)
//     "recovery": "zero",           // zero | reload
//     "fault_rates": [0, 1e-4],     // ambient MSB faults per weight
//     "attackers": [
//       {"kind": "random_msb", "flips": 10},
//       {"kind": "pbfa", "flips": 5, "allowed_bits": [7]},
//       {"kind": "knowledgeable", "flips": 10, "assumed_group_size": 32}
//     ],
//     "schemes": [
//       {"id": "radar2", "group_size": 32, "interleave": true},
//       {"id": "crc13", "group_size": 32}
//     ]
//   }
//
// Unknown keys are rejected, all numeric fields are range-checked, and
// parsing never crashes on malformed input (see the fuzz battery).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/integrity_scheme.h"

namespace radar::campaign {

/// One attacker column of the campaign matrix.
struct AttackerSpec {
  /// "random" | "random_msb" | "pbfa" | "knowledgeable" | "rowhammer".
  std::string kind = "random_msb";
  int flips = 10;  ///< committed flips (primary flips for knowledgeable)
  /// PBFA only: admissible bit positions (empty = all 8).
  std::vector<int> allowed_bits;
  /// Knowledgeable only: the attacker's guess of the defender's G.
  std::int64_t assumed_group_size = 512;
  /// PBFA / knowledgeable: gradient-estimation batch size.
  std::int64_t attack_batch = 16;
  // Rowhammer only: the physical-address attack shape. `flips` is
  // ignored — the burst size is whatever the hammered rows yield.
  std::string mapping = "stripe";  ///< "rowmajor" | "stripe"
  int rows = 1;                    ///< victim rows hammered per trial
  std::int64_t activations = 150000;  ///< per aggressor row
  bool double_sided = false;
  std::int64_t row_bytes = 8192;  ///< DRAM row size holding the arena

  /// Stable display label, e.g. "pbfa/nbf5", "knowledgeable/aG32", or
  /// "rowhammer/r4/a150000/ds/stripe/rb8192".
  std::string label() const;
};

/// One protection-scheme column (any SchemeRegistry id).
struct SchemeSpec {
  std::string id = "radar2";
  core::SchemeParams params;

  /// Stable display label, e.g. "radar2/G32/ilv".
  std::string label() const;
};

struct CampaignSpec {
  std::string name = "campaign";
  std::string model = "tiny";  ///< exp::make_bundle id
  bool train = true;           ///< false: raw init, reproducible w/o cache
  int trials = 3;
  std::uint64_t seed = 0x5241;
  std::int64_t eval_subset = 0;  ///< test images for accuracy (0 = skip)
  core::RecoveryPolicy policy = core::RecoveryPolicy::kZeroOut;
  std::vector<AttackerSpec> attackers;
  std::vector<SchemeSpec> schemes;
  std::vector<double> fault_rates = {0.0};  ///< extra MSB faults / weight
  /// Non-empty: disk-cache attack profiles under model_cache_dir() so
  /// repeated bench runs skip the expensive attack phase.
  std::string cache_tag;

  std::size_t num_cells() const {
    return attackers.size() * fault_rates.size() * schemes.size();
  }
  std::size_t num_trials_total() const {
    return num_cells() * static_cast<std::size_t>(trials);
  }

  /// Throws InvalidArgument on an inconsistent spec (unknown attacker
  /// kind, unregistered scheme id, non-positive trials, ...).
  void validate() const;

  std::string to_json() const;
  static CampaignSpec from_json_text(const std::string& text);
  static CampaignSpec from_json_file(const std::string& path);
};

}  // namespace radar::campaign
