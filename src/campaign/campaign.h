// CampaignRunner: parallel execution of declarative attack campaigns.
//
// A CampaignSpec expands into independent units in two phases, both fanned
// out over a radar::ThreadPool:
//
//   1. profiles — one per (attacker, fault rate, trial): inject the
//      attacker's flips plus ambient MSB faults into a clean model replica
//      and record the committed BitFlips (and post-attack accuracy when
//      eval_subset > 0);
//   2. evaluation — one per (attacker, fault rate, scheme, trial): replay
//      the recorded flips against a freshly attached scheme, scan through
//      ScanSession, apply the recovery policy, and measure the outcome.
//
// Determinism is by construction: every unit draws from an RNG seeded by
// derive_seed(spec.seed, phase, unit) — a pure function of the spec, never
// of scheduling — each worker chunk runs on its own identical model
// replica, and results land in per-unit slots that are aggregated in a
// fixed order. A CampaignReport is therefore bit-identical for 1 and N
// worker threads (the acceptance property of the differential tests).
#pragma once

#include <cstdint>

#include "campaign/campaign_report.h"
#include "campaign/campaign_spec.h"
#include "qnn/engine.h"

namespace radar::campaign {

/// Order-free seed derivation (splitmix64-style chain): one independent
/// stream per (phase, unit) pair, regardless of execution order.
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t phase,
                          std::uint64_t unit);

/// How the evaluation phase scans and restores between trials.
enum class ScanMode {
  /// Full rescan of every group plus a whole-model snapshot restore per
  /// trial (the original engine; kept as the differential baseline).
  kFull,
  /// Incremental: schemes attach once per worker and stay cached, each
  /// trial's writes are tracked as dirty ranges, only the touched groups
  /// are rescanned, and the trial is undone write-by-write instead of
  /// restoring the whole snapshot. Reports are byte-identical to kFull
  /// (enforced by CI and the differential tests).
  kIncremental,
  /// Scheduled: each trial's scan runs through a budget-driven
  /// core::ScanScheduler, interleaving one inference batch between scan
  /// slices and recording time-to-detect as a function of the budget —
  /// the detection-latency side of the QoS Pareto. The completed sweep's
  /// report is byte-identical to kFull for ANY budget (the budget moves
  /// *when* groups are scanned, never what a sweep reports), so default
  /// (non-timing) reports diff clean against kFull; the scheduling
  /// telemetry lands in the timing-gated JSON section only.
  kScheduled,
};

/// How the evaluation phase runs accuracy measurements and (for
/// ScanMode::kScheduled) slices the interleaved scan. Pure throughput /
/// latency knobs: the int8 engine is bit-exact across kinds and batch
/// sizes and a scheduled sweep reports exactly what a full scan reports,
/// so default reports are byte-identical for every combination
/// (CI-enforced).
struct EvalOptions {
  std::int64_t batch = 0;  ///< images per engine forward (0 = auto)
  qnn::EngineKind engine = qnn::EngineKind::kBatched;
  // ---- ScanMode::kScheduled knobs (ignored by the other modes) ----
  std::int64_t scan_budget_us = -1;     ///< per-slice wall budget (<0: off)
  std::int64_t scan_budget_bytes = -1;  ///< per-slice byte budget (<0: off)
  std::int64_t scan_chunk_bytes = 16 * 1024;  ///< sweep granule
};

class CampaignRunner {
 public:
  /// `threads`: trial-level workers (0 = hardware concurrency, 1 =
  /// inline). `scan_threads`: layer-parallel ScanSession width inside each
  /// trial (per-trial scans stay bit-identical to serial scans).
  explicit CampaignRunner(std::size_t threads = 1,
                          std::size_t scan_threads = 1,
                          ScanMode mode = ScanMode::kFull,
                          EvalOptions eval = {});

  std::size_t threads() const { return threads_; }
  ScanMode scan_mode() const { return mode_; }
  const EvalOptions& eval_options() const { return eval_; }

  /// Validate and run `spec`; throws InvalidArgument on a bad spec.
  CampaignReport run(const CampaignSpec& spec) const;

 private:
  std::size_t threads_;
  std::size_t scan_threads_;
  ScanMode mode_;
  EvalOptions eval_;
};

}  // namespace radar::campaign
