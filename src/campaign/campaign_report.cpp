#include "campaign/campaign_report.h"

#include <sstream>

#include "campaign/json.h"
#include "common/error.h"

namespace radar::campaign {

namespace {

/// Fixed-precision formatting so equal doubles always serialize equally.
std::string fmt(double v, const char* spec = "%.6f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

std::string json_escape(const std::string& s) { return Json::escape(s); }

}  // namespace

const CellStats& CampaignReport::cell(std::size_t attacker, std::size_t fault,
                                      std::size_t scheme) const {
  const std::size_t idx =
      (attacker * num_fault_rates + fault) * num_schemes + scheme;
  RADAR_REQUIRE(idx < cells.size() && scheme < num_schemes &&
                    fault < num_fault_rates,
                "campaign cell index out of range");
  return cells[idx];
}

std::string CampaignReport::to_json(bool include_timing) const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"campaign\": \"" << json_escape(name) << "\",\n";
  os << "  \"model\": \"" << json_escape(model) << "\",\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"trials\": " << trials << ",\n";
  if (clean_accuracy >= 0.0)
    os << "  \"clean_accuracy\": " << fmt(clean_accuracy) << ",\n";
  os << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellStats& c = cells[i];
    os << "    {\"attacker\": \"" << json_escape(c.attacker)
       << "\", \"scheme\": \"" << json_escape(c.scheme)
       << "\", \"fault_rate\": " << fmt(c.fault_rate, "%.9g")
       << ", \"trials\": " << c.trials
       << ", \"mean_flips\": " << fmt(c.mean_flips)
       << ", \"mean_detected\": " << fmt(c.mean_detected)
       << ", \"detection_rate\": " << fmt(c.detection_rate)
       << ", \"trial_detection_rate\": " << fmt(c.trial_detection_rate)
       << ", \"miss_rate\": " << fmt(c.miss_rate)
       << ", \"mean_flagged_groups\": " << fmt(c.mean_flagged_groups);
    if (c.mean_acc_attacked >= 0.0)
      os << ", \"mean_acc_attacked\": " << fmt(c.mean_acc_attacked)
         << ", \"mean_acc_recovered\": " << fmt(c.mean_acc_recovered);
    os << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  os << "  ]";
  if (include_timing) {
    os << ",\n  \"timing\": {\"threads\": " << threads
       << ", \"profile_seconds\": " << fmt(profile_seconds, "%.3f")
       << ", \"eval_seconds\": " << fmt(eval_seconds, "%.3f")
       << ", \"profile_images\": " << profile_images
       << ", \"eval_images\": " << eval_images
       << ", \"eval_images_per_sec\": "
       << fmt(eval_seconds > 0.0
                  ? static_cast<double>(eval_images) / eval_seconds
                  : 0.0,
              "%.1f")
       << "}";
    if (scheduled.enabled) {
      const ScheduledStats& s = scheduled;
      os << ",\n  \"scheduled\": {\"budget_us\": " << s.budget_us
         << ", \"budget_bytes\": " << s.budget_bytes
         << ", \"chunk_bytes\": " << s.chunk_bytes
         << ", \"trials\": " << s.trials
         << ", \"detected_trials\": " << s.detected_trials
         << ", \"batches\": " << s.batches
         << ", \"mean_slices_per_sweep\": "
         << fmt(s.mean_slices_per_sweep, "%.2f")
         << ", \"mean_ttd_slices\": " << fmt(s.mean_ttd_slices, "%.2f")
         << ", \"worst_ttd_slices\": " << s.worst_ttd_slices
         << ", \"mean_ttd_ms\": " << fmt(s.mean_ttd_ms, "%.3f")
         << ", \"worst_ttd_ms\": " << fmt(s.worst_ttd_ms, "%.3f")
         << ", \"coverage_period_ms\": " << fmt(s.mean_sweep_ms, "%.3f")
         << ", \"scan_bytes_per_sec\": "
         << fmt(s.scan_bytes_per_sec, "%.1f")
         << ", \"p99_batch_ms\": " << fmt(s.p99_batch_ms, "%.3f") << "}";
    }
  }
  os << "\n}\n";
  return os.str();
}

std::string CampaignReport::to_csv() const {
  std::ostringstream os;
  os << "attacker,scheme,fault_rate,trials,mean_flips,mean_detected,"
        "detection_rate,trial_detection_rate,miss_rate,mean_flagged_groups,"
        "mean_acc_attacked,mean_acc_recovered\n";
  for (const CellStats& c : cells) {
    os << c.attacker << "," << c.scheme << "," << fmt(c.fault_rate, "%.9g")
       << "," << c.trials << "," << fmt(c.mean_flips) << ","
       << fmt(c.mean_detected) << "," << fmt(c.detection_rate) << ","
       << fmt(c.trial_detection_rate) << "," << fmt(c.miss_rate) << ","
       << fmt(c.mean_flagged_groups) << ","
       << (c.mean_acc_attacked >= 0.0 ? fmt(c.mean_acc_attacked) : "") << ","
       << (c.mean_acc_recovered >= 0.0 ? fmt(c.mean_acc_recovered) : "")
       << "\n";
  }
  return os.str();
}

void CampaignReport::print(std::FILE* out) const {
  std::fprintf(out, "campaign %s: model=%s seed=%llu trials=%d", name.c_str(),
               model.c_str(), static_cast<unsigned long long>(seed), trials);
  if (clean_accuracy >= 0.0)
    std::fprintf(out, " clean=%.2f%%", 100.0 * clean_accuracy);
  std::fprintf(out, "\n");
  const bool eval = !cells.empty() && cells.front().mean_acc_attacked >= 0.0;
  std::fprintf(out, "  %-26s %-22s %9s %8s %8s %6s", "attacker", "scheme",
               "fault", "flips", "detect", "miss");
  if (eval) std::fprintf(out, " %9s %9s", "acc atk", "acc rec");
  std::fprintf(out, "\n");
  for (const CellStats& c : cells) {
    std::fprintf(out, "  %-26s %-22s %9.2g %8.1f %7.1f%% %5.0f%%",
                 c.attacker.c_str(), c.scheme.c_str(), c.fault_rate,
                 c.mean_flips, 100.0 * c.detection_rate, 100.0 * c.miss_rate);
    if (eval)
      std::fprintf(out, " %8.2f%% %8.2f%%", 100.0 * c.mean_acc_attacked,
                   100.0 * c.mean_acc_recovered);
    std::fprintf(out, "\n");
  }
  std::fprintf(out,
               "  phases: profiles %.2fs, evaluation %.2fs on %zu thread(s)\n",
               profile_seconds, eval_seconds, threads);
  if (scheduled.enabled) {
    std::fprintf(out,
                 "  scheduled: budget %lldus/%lldB, ttd mean %.2f / worst "
                 "%lld slices (%.3f / %.3f ms), coverage %.3f ms, scan %.1f "
                 "MB/s, p99 batch %.3f ms\n",
                 static_cast<long long>(scheduled.budget_us),
                 static_cast<long long>(scheduled.budget_bytes),
                 scheduled.mean_ttd_slices,
                 static_cast<long long>(scheduled.worst_ttd_slices),
                 scheduled.mean_ttd_ms, scheduled.worst_ttd_ms,
                 scheduled.mean_sweep_ms,
                 scheduled.scan_bytes_per_sec / 1e6,
                 scheduled.p99_batch_ms);
  }
}

}  // namespace radar::campaign
