#include "campaign/campaign.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <memory>
#include <utility>

#include "attack/knowledgeable.h"
#include "attack/pbfa.h"
#include "attack/random_attack.h"
#include "attack/rowhammer.h"
#include "common/env.h"
#include "common/error.h"
#include "common/logging.h"
#include "common/serialize.h"
#include "common/thread_pool.h"
#include "core/scan_scheduler.h"
#include "core/scan_session.h"
#include "core/scheme_registry.h"
#include "exp/workspace.h"

namespace radar::campaign {

namespace {

/// One worker's private model copy. Replicas are bit-identical (same init
/// seed or same cached checkpoint), so any replica may run any unit.
struct Replica {
  exp::ModelBundle bundle;
  quant::ArenaSnapshot clean;  ///< one-memcpy arena copy of the clean state
};

Replica make_replica(const CampaignSpec& spec, const EvalOptions& eval,
                     bool eval_clean = false, bool serial_engine = false) {
  Replica r{exp::make_bundle(spec.model, spec.train, /*eval_clean=*/false),
            {}};
  r.bundle.eval_batch = eval.batch;
  r.bundle.engine_kind = eval.engine;
  if (spec.eval_subset > 0) {
    // Worker replicas already saturate the cores with trial-level
    // parallelism; routing their forwards (calibration included) through
    // the shared global pool would make every engine sub-step a
    // cross-worker barrier (its wait() drains ALL submitters). Build
    // those engines serial up front, before ensure_engine calibrates.
    if (serial_engine) {
      r.bundle.engine = std::make_unique<qnn::InferenceEngine>(
          *r.bundle.qmodel, eval.engine, /*pool=*/nullptr);
    }
    // Calibrate the int8 engine while the model is clean; trial evals
    // then run the whole eval subset as true batches through it.
    exp::ensure_engine(r.bundle);
    if (eval_clean) {
      r.bundle.clean_accuracy =
          exp::accuracy_on_subset(r.bundle, r.bundle.dataset->test_size());
    }
  }
  r.clean = r.bundle.qmodel->snapshot();
  return r;
}

/// Result slots of one evaluation unit (cell × trial).
struct TrialOutcome {
  std::int64_t flips = 0, detected = 0, flagged = 0;
  bool any_detected = false;
  double acc_recovered = -1.0;
  // ---- ScanMode::kScheduled telemetry (timing-gated in the report) ----
  std::int64_t sched_slices = 0;      ///< run_slice calls to complete a sweep
  std::int64_t sched_ttd_slices = -1;  ///< slices until first flagged slice
  std::int64_t sched_ttd_ns = -1;
  std::int64_t sched_sweep_ns = 0;  ///< measured coverage period
  std::int64_t sched_scan_ns = 0;   ///< wall time inside run_slice
  std::int64_t sched_bytes = 0;
  std::vector<std::int64_t> sched_batch_ns;  ///< interleaved batch latencies
};

/// Per-chunk context of the evaluation phase. In kFull mode the scheme
/// (and its scan session) is re-attached whenever the chunk crosses a
/// cell boundary. In kIncremental mode every scheme column is attached at
/// most once per worker and cached (a scheme's golden codes depend only on
/// its spec and the clean model, so cells sharing a scheme share the
/// attachment), and the reusable DetectionReport keeps the per-trial scan
/// loop allocation-free.
struct EvalContext {
  std::size_t cell = static_cast<std::size_t>(-1);
  std::unique_ptr<core::IntegrityScheme> scheme;
  std::unique_ptr<core::ScanSession> session;
  std::vector<std::unique_ptr<core::IntegrityScheme>> schemes;  ///< per si
  std::vector<std::unique_ptr<core::ScanSession>> sessions;     ///< per si
  core::DetectionReport report;  ///< scratch, reused across trials
  core::ScanScheduler scheduler;  ///< kScheduled only, replanned per cell
};

/// Fan fn(replica, context, unit) out over `pool` in contiguous chunks
/// (inline on `primary` when pool is null). Each chunk gets a fresh
/// replica + context; the first exception is rethrown on the caller.
/// `images` accumulates how many test images each replica actually
/// forwarded through the engine (timing telemetry only).
template <typename Context, typename Fn>
void for_each_unit(std::size_t n, ThreadPool* pool, Replica& primary,
                   const CampaignSpec& spec, const EvalOptions& eval,
                   std::atomic<std::int64_t>& images, Fn&& fn) {
  if (n == 0) return;
  if (pool == nullptr || n == 1) {
    Context ctx;
    const std::int64_t before = primary.bundle.eval_images;
    for (std::size_t u = 0; u < n; ++u) fn(primary, ctx, u);
    images += primary.bundle.eval_images - before;
    return;
  }
  std::exception_ptr error;
  std::atomic<bool> failed{false};
  pool->parallel_for_chunks(n, [&](std::size_t begin, std::size_t end) {
    try {
      Replica replica =
          make_replica(spec, eval, /*eval_clean=*/false,
                       /*serial_engine=*/true);
      Context ctx;
      for (std::size_t u = begin; u < end; ++u) fn(replica, ctx, u);
      images += replica.bundle.eval_images;
    } catch (...) {
      if (!failed.exchange(true)) error = std::current_exception();
    }
  });
  if (error) std::rethrow_exception(error);
}

std::string sanitize(const std::string& s) {
  std::string out;
  for (const char c : s)
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '-';
  return out;
}

/// Content signature of one profile group (attacker × fault rate): every
/// spec field that shapes the recorded flips, and nothing positional. The
/// profile RNG streams and the disk cache both key off it, so a cached
/// group stays valid when the spec matrix around it is edited — the
/// display label alone would collide for attackers differing only in
/// attack_batch, allowed_bits, or the train flag.
std::string profile_signature(const CampaignSpec& spec, std::size_t ai,
                              std::size_t fi) {
  const AttackerSpec& atk = spec.attackers[ai];
  std::string bits;
  for (const int b : atk.allowed_bits) bits += std::to_string(b);
  char rate[40];
  // Round-trip precision: rates differing in any bit must key apart.
  std::snprintf(rate, sizeof(rate), "%.17g", spec.fault_rates[fi]);
  return sanitize(spec.model) + (spec.train ? "" : "-raw") + "_" +
         sanitize(atk.label()) + "_b" + std::to_string(atk.attack_batch) +
         (bits.empty() ? std::string() : "_bits" + bits) + "_f" +
         sanitize(rate);
}

/// FNV-1a of the signature — the `unit` fed to derive_seed.
std::uint64_t signature_hash(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::string profile_cache_path(const CampaignSpec& spec, std::size_t ai,
                               std::size_t fi) {
  return model_cache_dir() + "/campaign_" + sanitize(spec.cache_tag) + "_" +
         profile_signature(spec, ai, fi) + "_T" +
         std::to_string(spec.trials) + "_e" +
         std::to_string(spec.eval_subset) + "_s" +
         std::to_string(spec.seed) + ".bin";
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t phase,
                          std::uint64_t unit) {
  std::uint64_t s = splitmix64(seed ^ 0x5241444152CA3DULL);
  s = splitmix64(s ^ phase);
  return splitmix64(s ^ unit);
}

CampaignRunner::CampaignRunner(std::size_t threads, std::size_t scan_threads,
                               ScanMode mode, EvalOptions eval)
    : threads_(threads == 0
                   ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                   : threads),
      scan_threads_(scan_threads),
      mode_(mode),
      eval_(eval) {}

CampaignReport CampaignRunner::run(const CampaignSpec& spec) const {
  using clock = std::chrono::steady_clock;
  spec.validate();
  if (mode_ == ScanMode::kScheduled)
    RADAR_REQUIRE(eval_.scan_budget_us != 0 && eval_.scan_budget_bytes != 0,
                  "scheduled campaign budget must be nonzero: a zero "
                  "budget starves every slice and the sweep never wraps");

  const auto T = static_cast<std::size_t>(spec.trials);
  const std::size_t A = spec.attackers.size();
  const std::size_t F = spec.fault_rates.size();
  const std::size_t S = spec.schemes.size();
  const std::size_t n_profiles = A * F * T;
  const std::size_t n_units = A * F * S * T;

  // The primary replica is built serially first: it trains (or loads) the
  // checkpoint before worker replicas race to read it, serves as the
  // inline worker, and supplies the clean accuracy.
  Replica primary = make_replica(spec, eval_, /*eval_clean=*/true);
  std::unique_ptr<ThreadPool> pool;
  if (threads_ > 1) pool = std::make_unique<ThreadPool>(threads_);
  std::atomic<std::int64_t> profile_images{0}, eval_images{0};

  RADAR_LOG(kInfo) << "campaign " << spec.name << ": " << n_units
                   << " trials (" << n_profiles << " profiles) on "
                   << threads_ << " thread(s)";

  // ---- phase 1: attack profiles, one per (attacker, fault, trial) ----
  const auto t0 = clock::now();
  std::vector<attack::AttackResult> profiles(n_profiles);
  std::vector<bool> group_cached(A * F, false);
  if (!spec.cache_tag.empty()) {
    for (std::size_t ai = 0; ai < A; ++ai)
      for (std::size_t fi = 0; fi < F; ++fi) {
        const std::string path = profile_cache_path(spec, ai, fi);
        if (!file_exists(path)) continue;
        std::vector<attack::AttackResult> loaded;
        try {
          loaded = attack::load_profiles(path);
        } catch (const Error&) {
          continue;  // corrupt/truncated cache (killed run): recompute
        }
        if (loaded.size() != T) continue;  // stale: recompute
        for (std::size_t t = 0; t < T; ++t)
          profiles[(ai * F + fi) * T + t] = std::move(loaded[t]);
        group_cached[ai * F + fi] = true;
      }
  }
  std::vector<std::size_t> pending;
  pending.reserve(n_profiles);
  for (std::size_t p = 0; p < n_profiles; ++p)
    if (!group_cached[p / T]) pending.push_back(p);

  // Content-derived stream ids: the RNG of trial t of a profile group
  // depends on what the group *is*, not where it sits in the matrix, so
  // cached groups stay valid when the spec is edited around them.
  std::vector<std::uint64_t> group_hash(A * F);
  for (std::size_t ai = 0; ai < A; ++ai)
    for (std::size_t fi = 0; fi < F; ++fi)
      group_hash[ai * F + fi] =
          signature_hash(profile_signature(spec, ai, fi));

  auto run_profile = [&](Replica& rep, std::size_t p) {
    const std::size_t t = p % T;
    const std::size_t fi = (p / T) % F;
    const std::size_t ai = p / (T * F);
    const std::uint64_t unit =
        group_hash[ai * F + fi] +
        0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(t + 1);
    const AttackerSpec& atk = spec.attackers[ai];
    quant::QuantizedModel& qm = *rep.bundle.qmodel;
    qm.restore(rep.clean);
    Rng rng(derive_seed(spec.seed, 1, unit));
    attack::AttackResult res;
    if (atk.kind == "random") {
      res = attack::random_bit_flips(qm, atk.flips, rng);
    } else if (atk.kind == "random_msb") {
      res = attack::random_msb_flips(qm, atk.flips, rng);
    } else if (atk.kind == "pbfa") {
      attack::PbfaConfig pc;
      if (!atk.allowed_bits.empty()) pc.allowed_bits = atk.allowed_bits;
      attack::Pbfa pbfa(pc);
      const data::Batch batch = rep.bundle.dataset->attack_batch(
          atk.attack_batch, derive_seed(spec.seed, 2, unit));
      res = pbfa.run(qm, batch, atk.flips);
    } else if (atk.kind == "rowhammer") {
      attack::RowhammerConfig rc;
      rc.dram.mapping = atk.mapping == "rowmajor"
                            ? sim::AddressMapping::kRowMajor
                            : sim::AddressMapping::kBankStripe;
      rc.dram.row_bytes = atk.row_bytes;
      rc.rows = atk.rows;
      rc.activations = atk.activations;
      rc.double_sided = atk.double_sided;
      res = attack::rowhammer_attack(qm, rc, rng);
    } else {  // "knowledgeable"
      attack::KnowledgeableConfig kc;
      kc.assumed_group_size = atk.assumed_group_size;
      if (!atk.allowed_bits.empty()) kc.pbfa.allowed_bits = atk.allowed_bits;
      attack::KnowledgeableAttacker attacker(kc);
      const data::Batch batch = rep.bundle.dataset->attack_batch(
          atk.attack_batch, derive_seed(spec.seed, 2, unit));
      res = attacker.run(qm, batch, atk.flips, rng);
    }
    // Ambient faults: independent MSB flips at the cell's fault rate.
    const double rate = spec.fault_rates[fi];
    const auto n_faults = static_cast<int>(
        std::llround(rate * static_cast<double>(qm.total_weights())));
    if (n_faults > 0) {
      Rng frng(derive_seed(spec.seed, 3, unit));
      const auto faults = attack::random_msb_flips(qm, n_faults, frng);
      res.flips.insert(res.flips.end(), faults.flips.begin(),
                       faults.flips.end());
    }
    if (spec.eval_subset > 0)
      res.accuracy_after =
          exp::accuracy_on_subset(rep.bundle, spec.eval_subset);
    qm.restore(rep.clean);
    profiles[p] = std::move(res);
  };
  struct NoContext {};
  for_each_unit<NoContext>(
      pending.size(), pool.get(), primary, spec, eval_, profile_images,
      [&](Replica& rep, NoContext&, std::size_t k) {
        run_profile(rep, pending[k]);
      });

  if (!spec.cache_tag.empty()) {
    for (std::size_t ai = 0; ai < A; ++ai)
      for (std::size_t fi = 0; fi < F; ++fi) {
        if (group_cached[ai * F + fi]) continue;
        std::vector<attack::AttackResult> group(
            profiles.begin() +
                static_cast<std::ptrdiff_t>((ai * F + fi) * T),
            profiles.begin() +
                static_cast<std::ptrdiff_t>((ai * F + fi + 1) * T));
        attack::save_profiles(profile_cache_path(spec, ai, fi), group);
      }
  }
  const auto t1 = clock::now();

  // ---- phase 2: replay + scan + recover, one per (cell, trial) ----
  std::vector<TrialOutcome> outcomes(n_units);
  auto run_trial = [&](Replica& rep, EvalContext& ctx, std::size_t u) {
    const std::size_t t = u % T;
    const std::size_t cell = u / T;
    const std::size_t si = cell % S;
    const std::size_t fi = (cell / S) % F;
    const std::size_t ai = cell / (S * F);
    quant::QuantizedModel& qm = *rep.bundle.qmodel;
    const bool incremental = mode_ == ScanMode::kIncremental;
    const bool scheduled = mode_ == ScanMode::kScheduled;
    core::IntegrityScheme* scheme = nullptr;
    core::ScanSession* session = nullptr;
    if (incremental) {
      // Schemes depend only on their spec and the clean model, so each
      // worker attaches each scheme column once and reuses it across
      // cells. The model is clean here (fresh replica, or undone by the
      // previous trial), which is exactly what attach requires.
      if (ctx.schemes.empty()) ctx.schemes.resize(S);
      if (!qm.dirty_tracking()) qm.set_dirty_tracking(true);
      if (ctx.schemes[si] == nullptr) {
        const SchemeSpec& ss = spec.schemes[si];
        ctx.schemes[si] =
            core::SchemeRegistry::instance().create(ss.id, ss.params);
        ctx.schemes[si]->attach(qm);
      }
      scheme = ctx.schemes[si].get();
      if (scan_threads_ == 1) {
        // Poolless sessions are cheap: cache one per scheme so their scan
        // scratch stays warm across cells.
        if (ctx.sessions.empty()) ctx.sessions.resize(S);
        if (ctx.sessions[si] == nullptr)
          ctx.sessions[si] =
              std::make_unique<core::ScanSession>(*scheme, scan_threads_);
        session = ctx.sessions[si].get();
      } else {
        // Pooled sessions own worker threads; caching one per scheme
        // would keep workers x schemes x scan_threads threads alive.
        // Hold only the current cell's, like the full engine does.
        if (ctx.cell != cell || ctx.session == nullptr) {
          ctx.session =
              std::make_unique<core::ScanSession>(*scheme, scan_threads_);
          ctx.cell = cell;
        }
        session = ctx.session.get();
      }
    } else {
      if (ctx.cell != cell || ctx.scheme == nullptr) {
        qm.restore(rep.clean);  // golden codes must come from clean weights
        const SchemeSpec& ss = spec.schemes[si];
        ctx.session.reset();
        ctx.scheme =
            core::SchemeRegistry::instance().create(ss.id, ss.params);
        ctx.scheme->attach(qm);
        if (scheduled) {
          core::ScanScheduler::Config scfg;
          scfg.budget_us = eval_.scan_budget_us;
          scfg.budget_bytes = eval_.scan_budget_bytes;
          scfg.chunk_bytes = eval_.scan_chunk_bytes;
          ctx.scheduler.plan(*ctx.scheme, scfg);
          // Prime the engine's cached eval batches while the model is
          // clean so each slice can interleave a real inference batch.
          if (spec.eval_subset > 0)
            exp::accuracy_on_subset(rep.bundle, spec.eval_subset);
        } else {
          ctx.session = std::make_unique<core::ScanSession>(*ctx.scheme,
                                                            scan_threads_);
        }
        ctx.cell = cell;
      }
      scheme = ctx.scheme.get();
      session = ctx.session.get();
    }
    const attack::AttackResult& profile = profiles[(ai * F + fi) * T + t];
    for (const attack::BitFlip& f : profile.flips)
      qm.flip_bit(f.layer, f.index, f.bit);
    TrialOutcome& o = outcomes[u];
    if (scheduled) {
      // Interleave budgeted scan slices with inference batches until the
      // sweep wraps — the serve-path cadence, measured per trial. The
      // completed sweep's report equals a serial scan bit for bit, so
      // everything downstream (detection counts, recovery, accuracy) is
      // byte-identical to kFull; only the timing telemetry differs.
      using clock = std::chrono::steady_clock;
      core::ScanScheduler& sched = ctx.scheduler;
      sched.restart_sweep();
      const auto s0 = clock::now();
      core::ScanScheduler::Slice slice;
      do {
        if (rep.bundle.engine != nullptr &&
            !rep.bundle.eval_batches.empty()) {
          const data::Batch& tb = rep.bundle.eval_batches
              [static_cast<std::size_t>(o.sched_slices) %
               rep.bundle.eval_batches.size()];
          const auto b0 = clock::now();
          rep.bundle.engine->forward_into(tb.images, rep.bundle.eval_scratch,
                                          rep.bundle.eval_logits);
          o.sched_batch_ns.push_back(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  clock::now() - b0)
                  .count());
          rep.bundle.eval_images += tb.images.dim(0);
        }
        slice = sched.run_slice(qm);
        o.sched_scan_ns += slice.elapsed_ns;
        o.sched_bytes += slice.bytes;
        ++o.sched_slices;
        if (slice.flagged && o.sched_ttd_slices < 0) {
          o.sched_ttd_slices = o.sched_slices;
          o.sched_ttd_ns =
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  clock::now() - s0)
                  .count();
        }
      } while (!slice.wrapped);
      o.sched_sweep_ns = sched.last_sweep_ns();
      ctx.report.flagged = sched.last_sweep_report().flagged;
    } else if (incremental) {
      session->scan_dirty_into(qm, ctx.report);
    } else {
      session->scan_into(qm, ctx.report);
    }
    const core::DetectionReport& report = ctx.report;
    o.flips = static_cast<std::int64_t>(profile.flips.size());
    o.detected =
        core::count_detected_flips(*scheme, report, profile.flip_sites());
    o.flagged = report.num_flagged_groups();
    o.any_detected = report.attack_detected();
    scheme->recover(qm, report, spec.policy);
    if (spec.eval_subset > 0)
      o.acc_recovered = exp::accuracy_on_subset(rep.bundle, spec.eval_subset);
    if (incremental)
      qm.undo_dirty();  // exact write-by-write inverse of this trial
    else
      qm.restore(rep.clean);
  };
  for_each_unit<EvalContext>(n_units, pool.get(), primary, spec, eval_,
                             eval_images, run_trial);
  const auto t2 = clock::now();

  // ---- aggregate in fixed cell-major order ----
  CampaignReport report;
  report.name = spec.name;
  report.model = spec.model;
  report.seed = spec.seed;
  report.trials = spec.trials;
  report.clean_accuracy = primary.bundle.clean_accuracy;
  report.num_fault_rates = F;
  report.num_schemes = S;
  report.threads = threads_;
  report.profile_seconds = std::chrono::duration<double>(t1 - t0).count();
  report.eval_seconds = std::chrono::duration<double>(t2 - t1).count();
  report.profile_images = profile_images.load();
  report.eval_images = eval_images.load();
  report.cells.reserve(A * F * S);
  for (std::size_t ai = 0; ai < A; ++ai) {
    for (std::size_t fi = 0; fi < F; ++fi) {
      for (std::size_t si = 0; si < S; ++si) {
        CellStats c;
        c.attacker = spec.attackers[ai].label();
        c.scheme = spec.schemes[si].label();
        c.fault_rate = spec.fault_rates[fi];
        c.trials = spec.trials;
        std::int64_t flips = 0, detected = 0, flagged = 0;
        int any = 0, missed = 0;
        double acc_att = 0.0, acc_rec = 0.0;
        const std::size_t cell = (ai * F + fi) * S + si;
        for (std::size_t t = 0; t < T; ++t) {
          const TrialOutcome& o = outcomes[cell * T + t];
          flips += o.flips;
          detected += o.detected;
          flagged += o.flagged;
          any += o.any_detected ? 1 : 0;
          missed += (o.flips > 0 && !o.any_detected) ? 1 : 0;
          acc_att += profiles[(ai * F + fi) * T + t].accuracy_after;
          acc_rec += o.acc_recovered;
        }
        const auto n = static_cast<double>(T);
        c.mean_flips = static_cast<double>(flips) / n;
        c.mean_detected = static_cast<double>(detected) / n;
        c.detection_rate =
            flips > 0 ? static_cast<double>(detected) /
                            static_cast<double>(flips)
                      : 0.0;
        c.trial_detection_rate = static_cast<double>(any) / n;
        c.miss_rate = static_cast<double>(missed) / n;
        c.mean_flagged_groups = static_cast<double>(flagged) / n;
        if (spec.eval_subset > 0) {
          c.mean_acc_attacked = acc_att / n;
          c.mean_acc_recovered = acc_rec / n;
        }
        report.cells.push_back(std::move(c));
      }
    }
  }

  if (mode_ == ScanMode::kScheduled) {
    ScheduledStats& sc = report.scheduled;
    sc.enabled = true;
    sc.budget_us = eval_.scan_budget_us;
    sc.budget_bytes = eval_.scan_budget_bytes;
    sc.chunk_bytes = eval_.scan_chunk_bytes;
    std::vector<std::int64_t> batch_ns;
    std::int64_t slices = 0, sweep_ns = 0, bytes = 0, scan_ns = 0;
    std::int64_t ttd_slice_sum = 0, ttd_ns_sum = 0;
    for (const TrialOutcome& o : outcomes) {
      ++sc.trials;
      slices += o.sched_slices;
      sweep_ns += o.sched_sweep_ns;
      bytes += o.sched_bytes;
      scan_ns += o.sched_scan_ns;
      batch_ns.insert(batch_ns.end(), o.sched_batch_ns.begin(),
                      o.sched_batch_ns.end());
      if (o.sched_ttd_slices >= 0) {
        ++sc.detected_trials;
        ttd_slice_sum += o.sched_ttd_slices;
        ttd_ns_sum += o.sched_ttd_ns;
        sc.worst_ttd_slices =
            std::max(sc.worst_ttd_slices, o.sched_ttd_slices);
        sc.worst_ttd_ms = std::max(
            sc.worst_ttd_ms, static_cast<double>(o.sched_ttd_ns) / 1e6);
      }
    }
    if (sc.detected_trials > 0) {
      const auto nd = static_cast<double>(sc.detected_trials);
      sc.mean_ttd_slices = static_cast<double>(ttd_slice_sum) / nd;
      sc.mean_ttd_ms = static_cast<double>(ttd_ns_sum) / nd / 1e6;
    }
    if (sc.trials > 0) {
      sc.mean_slices_per_sweep =
          static_cast<double>(slices) / static_cast<double>(sc.trials);
      sc.mean_sweep_ms = static_cast<double>(sweep_ns) /
                         static_cast<double>(sc.trials) / 1e6;
    }
    if (scan_ns > 0)
      sc.scan_bytes_per_sec =
          static_cast<double>(bytes) * 1e9 / static_cast<double>(scan_ns);
    sc.batches = static_cast<std::int64_t>(batch_ns.size());
    if (!batch_ns.empty()) {
      std::sort(batch_ns.begin(), batch_ns.end());
      const std::size_t p99 =
          std::min(batch_ns.size() - 1, (batch_ns.size() * 99) / 100);
      sc.p99_batch_ms = static_cast<double>(batch_ns[p99]) / 1e6;
    }
  }
  return report;
}

}  // namespace radar::campaign
