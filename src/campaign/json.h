// Minimal strict JSON for campaign specs.
//
// A self-contained recursive-descent parser (no external dependency — the
// container ships no JSON library) with the safety properties the fuzz
// battery demands: depth-limited recursion, full-input consumption, and
// checked numeric conversions. Numbers are stored as doubles, so integer
// fields are exact up to 2^53 — far beyond any spec field. All failures
// throw SerializationError (malformed text) or InvalidArgument (wrong type
// / out-of-range access), never crash.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"

namespace radar::campaign {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;

  /// Parse a complete JSON document; trailing non-whitespace is an error.
  static Json parse(const std::string& text);

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  bool as_bool() const;
  double as_number() const;
  /// Number that must be integral and fit the target range. Plain
  /// integer tokens are decoded exactly from their digits (full
  /// int64/uint64 range); anything with a fraction or exponent goes
  /// through the double and is limited to ±2^53.
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  const std::string& as_string() const;
  const std::vector<Json>& items() const;  ///< array elements

  /// Object field access. `at` throws on a missing key; `find` returns
  /// nullptr.
  const Json& at(const std::string& key) const;
  const Json* find(const std::string& key) const;
  const std::map<std::string, Json>& fields() const;

  /// Escape `s` for embedding in a JSON string literal (quotes,
  /// backslashes and control characters).
  static std::string escape(const std::string& s);

 private:
  struct Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string raw_;  ///< verbatim number token (exact u64/i64 decoding)
  std::string string_;
  std::vector<Json> items_;
  std::map<std::string, Json> fields_;
};

}  // namespace radar::campaign
