#include "campaign/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace radar::campaign {

namespace {
constexpr int kMaxDepth = 64;

[[noreturn]] void fail(const std::string& what, std::size_t pos) {
  throw SerializationError("JSON parse error at offset " +
                           std::to_string(pos) + ": " + what);
}
}  // namespace

struct Json::Parser {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input", pos);
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'", pos);
    ++pos;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text.compare(pos, n, lit) != 0) return false;
    pos += n;
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep", pos);
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"': {
        Json v;
        v.type_ = Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
        if (consume_literal("true")) {
          Json v;
          v.type_ = Type::kBool;
          v.bool_ = true;
          return v;
        }
        fail("invalid literal", pos);
      case 'f':
        if (consume_literal("false")) {
          Json v;
          v.type_ = Type::kBool;
          v.bool_ = false;
          return v;
        }
        fail("invalid literal", pos);
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal", pos);
      default:
        return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json v;
    v.type_ = Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos;
      return v;
    }
    for (;;) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      if (v.fields_.count(key) != 0) fail("duplicate key: " + key, pos);
      v.fields_[key] = parse_value(depth + 1);
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos;
        continue;
      }
      if (c == '}') {
        ++pos;
        return v;
      }
      fail("expected ',' or '}'", pos);
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json v;
    v.type_ = Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos;
      return v;
    }
    for (;;) {
      v.items_.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos;
        continue;
      }
      if (c == ']') {
        ++pos;
        return v;
      }
      fail("expected ',' or ']'", pos);
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos >= text.size()) fail("unterminated string", pos);
      const char c = text[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("control character in string", pos - 1);
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape", pos);
      const char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape", pos);
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape", pos - 1);
          }
          // UTF-8 encode the BMP code point (surrogates pass through as
          // replacement-free raw encodings; spec files are ASCII anyway).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          fail("invalid escape", pos - 1);
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    auto digits = [&] {
      const std::size_t before = pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
      return pos > before;
    };
    if (!digits()) fail("invalid number", start);
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (!digits()) fail("invalid number", start);
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (!digits()) fail("invalid number", start);
    }
    const std::string token = text.substr(start, pos - start);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(d))
      fail("number out of range", start);
    Json v;
    v.type_ = Type::kNumber;
    v.number_ = d;
    v.raw_ = token;
    return v;
  }
};

Json Json::parse(const std::string& text) {
  Parser p{text};
  Json v = p.parse_value(0);
  p.skip_ws();
  if (p.pos != text.size()) fail("trailing characters", p.pos);
  return v;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw InvalidArgument("JSON value is not a bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber)
    throw InvalidArgument("JSON value is not a number");
  return number_;
}

namespace {
/// True when `raw` is a plain (optionally signed) digit run — an exact
/// integer token with no fraction or exponent.
bool plain_int_token(const std::string& raw) {
  if (raw.empty()) return false;
  std::size_t i = raw[0] == '-' ? 1 : 0;
  if (i == raw.size()) return false;
  for (; i < raw.size(); ++i)
    if (!std::isdigit(static_cast<unsigned char>(raw[i]))) return false;
  return true;
}
}  // namespace

std::int64_t Json::as_int() const {
  const double d = as_number();
  if (plain_int_token(raw_)) {
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(raw_.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0')
      throw InvalidArgument("JSON integer out of int64 range");
    return v;
  }
  if (d != std::floor(d) || d < -9.007199254740992e15 ||
      d > 9.007199254740992e15)
    throw InvalidArgument("JSON number is not an exact integer");
  return static_cast<std::int64_t>(d);
}

std::uint64_t Json::as_uint() const {
  if (plain_int_token(raw_)) {
    if (raw_[0] == '-') throw InvalidArgument("JSON number is negative");
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(raw_.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0')
      throw InvalidArgument("JSON integer out of uint64 range");
    return v;
  }
  const std::int64_t v = as_int();
  if (v < 0) throw InvalidArgument("JSON number is negative");
  return static_cast<std::uint64_t>(v);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString)
    throw InvalidArgument("JSON value is not a string");
  return string_;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray)
    throw InvalidArgument("JSON value is not an array");
  return items_;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (v == nullptr) throw InvalidArgument("missing JSON key: " + key);
  return *v;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject)
    throw InvalidArgument("JSON value is not an object");
  const auto it = fields_.find(key);
  return it == fields_.end() ? nullptr : &it->second;
}

const std::map<std::string, Json>& Json::fields() const {
  if (type_ != Type::kObject)
    throw InvalidArgument("JSON value is not an object");
  return fields_;
}

std::string Json::escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace radar::campaign
