#include "campaign/campaign_spec.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "campaign/json.h"
#include "core/scheme_registry.h"

namespace radar::campaign {

namespace {

using core::kMaxGroupSize;
using core::kMaxSkew;

const char* expansion_name(core::MaskStream::Expansion e) {
  return e == core::MaskStream::Expansion::kRepeat ? "repeat" : "prf";
}

core::MaskStream::Expansion expansion_from(const std::string& s) {
  if (s == "repeat") return core::MaskStream::Expansion::kRepeat;
  if (s == "prf") return core::MaskStream::Expansion::kPrf;
  throw InvalidArgument("unknown mask expansion: " + s);
}

/// Strict object decode: every key must be consumed by `known`.
void reject_unknown_keys(const Json& obj,
                         std::initializer_list<const char*> known,
                         const char* what) {
  for (const auto& [key, value] : obj.fields()) {
    (void)value;
    bool ok = false;
    for (const char* k : known)
      if (key == k) {
        ok = true;
        break;
      }
    if (!ok)
      throw InvalidArgument(std::string("unknown ") + what +
                            " key: " + key);
  }
}

/// as_int() that must also fit an int — rejects values that would wrap
/// through static_cast instead of failing validate()'s range checks.
int checked_int(const Json& v, const char* what) {
  const std::int64_t i = v.as_int();
  if (i < INT32_MIN || i > INT32_MAX)
    throw InvalidArgument(std::string(what) + " out of range");
  return static_cast<int>(i);
}

AttackerSpec attacker_from_json(const Json& j) {
  reject_unknown_keys(
      j, {"kind", "flips", "allowed_bits", "assumed_group_size",
          "attack_batch", "mapping", "rows", "activations", "double_sided",
          "row_bytes"},
      "attacker spec");
  AttackerSpec a;
  if (const Json* v = j.find("kind")) a.kind = v->as_string();
  if (const Json* v = j.find("flips")) a.flips = checked_int(*v, "flips");
  if (const Json* v = j.find("allowed_bits"))
    for (const Json& b : v->items())
      a.allowed_bits.push_back(checked_int(b, "allowed_bits entry"));
  if (const Json* v = j.find("assumed_group_size"))
    a.assumed_group_size = v->as_int();
  if (const Json* v = j.find("attack_batch")) a.attack_batch = v->as_int();
  if (const Json* v = j.find("mapping")) a.mapping = v->as_string();
  if (const Json* v = j.find("rows")) a.rows = checked_int(*v, "rows");
  if (const Json* v = j.find("activations")) a.activations = v->as_int();
  if (const Json* v = j.find("double_sided"))
    a.double_sided = v->as_bool();
  if (const Json* v = j.find("row_bytes")) a.row_bytes = v->as_int();
  return a;
}

SchemeSpec scheme_from_json(const Json& j) {
  reject_unknown_keys(
      j, {"id", "group_size", "interleave", "skew", "expansion",
          "master_key"},
      "scheme spec");
  SchemeSpec s;
  if (const Json* v = j.find("id")) s.id = v->as_string();
  if (const Json* v = j.find("group_size")) s.params.group_size = v->as_int();
  if (const Json* v = j.find("interleave")) s.params.interleave = v->as_bool();
  if (const Json* v = j.find("skew")) s.params.skew = v->as_int();
  if (const Json* v = j.find("expansion"))
    s.params.expansion = expansion_from(v->as_string());
  if (const Json* v = j.find("master_key")) s.params.master_key = v->as_uint();
  return s;
}

}  // namespace

std::string AttackerSpec::label() const {
  if (kind == "rowhammer") {
    // Every field shaping the burst is in the label: profile_signature
    // keys RNG streams and the disk cache off it.
    return kind + "/r" + std::to_string(rows) + "/a" +
           std::to_string(activations) + (double_sided ? "/ds" : "/ss") +
           "/" + mapping + "/rb" + std::to_string(row_bytes);
  }
  std::string out = kind + "/nbf" + std::to_string(flips);
  if (kind == "knowledgeable")
    out += "/aG" + std::to_string(assumed_group_size);
  if (kind == "pbfa" && !allowed_bits.empty()) {
    out += "/bits";
    for (const int b : allowed_bits) out += std::to_string(b);
  }
  return out;
}

std::string SchemeSpec::label() const {
  return id + "/G" + std::to_string(params.group_size) +
         (params.interleave ? "/ilv" : "/contig");
}

void CampaignSpec::validate() const {
  if (trials < 1 || trials > 100000)
    throw InvalidArgument("campaign trials must be in [1, 100000]");
  if (eval_subset < 0 || eval_subset > (std::int64_t{1} << 20))
    throw InvalidArgument("campaign eval_subset out of range");
  if (attackers.empty())
    throw InvalidArgument("campaign needs at least one attacker");
  if (schemes.empty())
    throw InvalidArgument("campaign needs at least one scheme");
  if (fault_rates.empty())
    throw InvalidArgument("campaign needs at least one fault rate");
  for (const double r : fault_rates)
    if (!std::isfinite(r) || r < 0.0 || r > 1.0)
      throw InvalidArgument("fault rates must be finite and in [0, 1]");
  for (const AttackerSpec& a : attackers) {
    if (a.kind != "random" && a.kind != "random_msb" && a.kind != "pbfa" &&
        a.kind != "knowledgeable" && a.kind != "rowhammer")
      throw InvalidArgument("unknown attacker kind: " + a.kind);
    if (a.flips < 0 || a.flips > 100000)
      throw InvalidArgument("attacker flips out of range");
    if (a.assumed_group_size < 1 || a.assumed_group_size > kMaxGroupSize)
      throw InvalidArgument("assumed_group_size out of range");
    if (a.attack_batch < 1 || a.attack_batch > 1024)
      throw InvalidArgument("attack_batch out of range");
    for (const int b : a.allowed_bits)
      if (b < 0 || b > 7)
        throw InvalidArgument("allowed_bits entries must be in [0, 7]");
    if (a.kind == "rowhammer") {
      if (a.mapping != "rowmajor" && a.mapping != "stripe")
        throw InvalidArgument("unknown rowhammer mapping: " + a.mapping);
      if (a.rows < 1 || a.rows > 4096)
        throw InvalidArgument("rowhammer rows out of range");
      if (a.activations < 1 || a.activations > 1000000000)
        throw InvalidArgument("rowhammer activations out of range");
      // The stripe interleave granule is 128 bytes; rows must tile it.
      if (a.row_bytes < 128 || a.row_bytes > (std::int64_t{1} << 20) ||
          a.row_bytes % 128 != 0)
        throw InvalidArgument("rowhammer row_bytes out of range");
    }
  }
  for (const SchemeSpec& s : schemes) {
    if (!core::SchemeRegistry::instance().contains(s.id))
      throw InvalidArgument("unregistered scheme id: " + s.id);
    if (s.params.group_size < 1 || s.params.group_size > kMaxGroupSize)
      throw InvalidArgument("scheme group_size out of range");
    if (s.params.skew < 0 || s.params.skew > kMaxSkew)
      throw InvalidArgument("scheme skew out of range");
  }
}

std::string CampaignSpec::to_json() const {
  std::ostringstream os;
  const auto& json_escape = Json::escape;
  os << "{\n";
  os << "  \"name\": \"" << json_escape(name) << "\",\n";
  os << "  \"model\": \"" << json_escape(model) << "\",\n";
  os << "  \"train\": " << (train ? "true" : "false") << ",\n";
  os << "  \"trials\": " << trials << ",\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"eval_subset\": " << eval_subset << ",\n";
  os << "  \"recovery\": \""
     << (policy == core::RecoveryPolicy::kReloadClean ? "reload" : "zero")
     << "\",\n";
  os << "  \"fault_rates\": [";
  for (std::size_t i = 0; i < fault_rates.size(); ++i) {
    char buf[40];
    // Round-trip precision: re-running a saved spec must reproduce the
    // in-memory run bit for bit.
    std::snprintf(buf, sizeof(buf), "%.17g", fault_rates[i]);
    os << (i ? ", " : "") << buf;
  }
  os << "],\n";
  if (!cache_tag.empty())
    os << "  \"cache_tag\": \"" << json_escape(cache_tag) << "\",\n";
  os << "  \"attackers\": [\n";
  for (std::size_t i = 0; i < attackers.size(); ++i) {
    const AttackerSpec& a = attackers[i];
    os << "    {\"kind\": \"" << json_escape(a.kind)
       << "\", \"flips\": " << a.flips;
    if (!a.allowed_bits.empty()) {
      os << ", \"allowed_bits\": [";
      for (std::size_t b = 0; b < a.allowed_bits.size(); ++b)
        os << (b ? ", " : "") << a.allowed_bits[b];
      os << "]";
    }
    if (a.kind == "knowledgeable")
      os << ", \"assumed_group_size\": " << a.assumed_group_size;
    if (a.kind == "pbfa" || a.kind == "knowledgeable")
      os << ", \"attack_batch\": " << a.attack_batch;
    if (a.kind == "rowhammer")
      os << ", \"mapping\": \"" << json_escape(a.mapping)
         << "\", \"rows\": " << a.rows << ", \"activations\": "
         << a.activations << ", \"double_sided\": "
         << (a.double_sided ? "true" : "false")
         << ", \"row_bytes\": " << a.row_bytes;
    os << "}" << (i + 1 < attackers.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"schemes\": [\n";
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    const SchemeSpec& s = schemes[i];
    os << "    {\"id\": \"" << json_escape(s.id)
       << "\", \"group_size\": " << s.params.group_size
       << ", \"interleave\": " << (s.params.interleave ? "true" : "false")
       << ", \"skew\": " << s.params.skew << ", \"expansion\": \""
       << expansion_name(s.params.expansion) << "\", \"master_key\": "
       << s.params.master_key << "}"
       << (i + 1 < schemes.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

CampaignSpec CampaignSpec::from_json_text(const std::string& text) {
  const Json root = Json::parse(text);
  if (!root.is_object())
    throw InvalidArgument("campaign spec must be a JSON object");
  reject_unknown_keys(root,
                      {"name", "model", "train", "trials", "seed",
                       "eval_subset", "recovery", "fault_rates", "cache_tag",
                       "attackers", "schemes"},
                      "campaign spec");
  CampaignSpec spec;
  if (const Json* v = root.find("name")) spec.name = v->as_string();
  if (const Json* v = root.find("model")) spec.model = v->as_string();
  if (const Json* v = root.find("train")) spec.train = v->as_bool();
  if (const Json* v = root.find("trials"))
    spec.trials = checked_int(*v, "trials");
  if (const Json* v = root.find("seed")) spec.seed = v->as_uint();
  if (const Json* v = root.find("eval_subset")) spec.eval_subset = v->as_int();
  if (const Json* v = root.find("recovery")) {
    const std::string& p = v->as_string();
    if (p == "zero") spec.policy = core::RecoveryPolicy::kZeroOut;
    else if (p == "reload") spec.policy = core::RecoveryPolicy::kReloadClean;
    else throw InvalidArgument("unknown recovery policy: " + p);
  }
  if (const Json* v = root.find("fault_rates")) {
    spec.fault_rates.clear();
    for (const Json& r : v->items()) spec.fault_rates.push_back(r.as_number());
  }
  if (const Json* v = root.find("cache_tag")) spec.cache_tag = v->as_string();
  for (const Json& a : root.at("attackers").items())
    spec.attackers.push_back(attacker_from_json(a));
  for (const Json& s : root.at("schemes").items())
    spec.schemes.push_back(scheme_from_json(s));
  spec.validate();
  return spec;
}

CampaignSpec CampaignSpec::from_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializationError("cannot open campaign spec: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_json_text(buf.str());
}

}  // namespace radar::campaign
